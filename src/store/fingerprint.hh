/**
 * @file
 * Model-semantics fingerprint: the version half of the result store's
 * (fingerprint, configHash) key.
 *
 * pointConfigHash() covers everything a *caller* chooses — workload,
 * mode, every ExperimentOptions knob including the inject plan — but
 * nothing the *simulator* defines: the testbed description
 * (SystemConfig) and the behaviour baked into the code itself. The
 * fingerprint covers that other half, so a cached record is only ever
 * served when both the question (config hash) and the machine that
 * answers it (fingerprint) are unchanged.
 *
 * Two inputs:
 *
 *   - modelSemanticsVersion, a hand-bumped constant. Bump it in the
 *     same commit as any change that alters what a simulation
 *     computes (cost-model formulas, event ordering, RNG stream
 *     derivation, default constants) — every prior store entry then
 *     misses cleanly instead of leaking stale results into new runs.
 *
 *   - every field of the SystemConfig the run actually uses, hashed
 *     explicitly field by field (doubles by bit pattern) with the
 *     same FNV-1a/splitmix64 idiom as pointConfigHash. A custom
 *     --config testbed therefore never shares entries with the
 *     default one. The watchdog ceilings are deliberately excluded:
 *     they decide whether a point *fails*, never what a successful
 *     point computes, and failed points are never cached — so
 *     loosening a ceiling does not orphan an entire store.
 */

#ifndef UVMASYNC_STORE_FINGERPRINT_HH
#define UVMASYNC_STORE_FINGERPRINT_HH

#include <cstdint>

#include "runtime/system_config.hh"

namespace uvmasync
{

/**
 * Bump on any behaviour-defining code change (see file comment).
 * History: 1 = first store-enabled release.
 */
constexpr std::uint32_t modelSemanticsVersion = 1;

/**
 * Stable 64-bit fingerprint of the simulator semantics under
 * @p system. Machine-independent; equal configs give equal
 * fingerprints on every platform.
 */
std::uint64_t modelSemanticsFingerprint(const SystemConfig &system);

} // namespace uvmasync

#endif // UVMASYNC_STORE_FINGERPRINT_HH
