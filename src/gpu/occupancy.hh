/**
 * @file
 * CUDA occupancy calculation: how many blocks of a kernel fit on one
 * SM given thread, block and shared-memory limits. Async memcpy
 * double-buffers shared memory, which is one of the two mechanisms
 * (with added control instructions) behind its slowdown on
 * compute-dense kernels (Section 4.1.1).
 */

#ifndef UVMASYNC_GPU_OCCUPANCY_HH
#define UVMASYNC_GPU_OCCUPANCY_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "gpu/gpu_config.hh"

namespace uvmasync
{

/** Result of an occupancy query. */
struct OccupancyResult
{
    /** Blocks resident per SM (>= 1; 0-block kernels are illegal). */
    std::uint32_t blocksPerSm = 0;

    /** Warps resident per SM. */
    std::uint32_t warpsPerSm = 0;

    /** warpsPerSm / maxWarpsPerSm. */
    double occupancy = 0.0;

    /** Which limit bound the result ("threads", "blocks", "shmem"). */
    const char *limiter = "";

    /**
     * Tile scale factor in (0, 1]: when the requested shared memory
     * per block exceeds the carveout, tiles must shrink by this
     * factor (dynamic allocation with a smaller stage depth).
     */
    double tileScale = 1.0;
};

/**
 * Compute residency for a kernel with @p threadsPerBlock threads and
 * @p sharedPerBlock bytes of shared memory per block, under a
 * @p sharedCarveout partition of the unified L1/shared SRAM.
 */
OccupancyResult computeOccupancy(const GpuConfig &cfg,
                                 std::uint32_t threadsPerBlock,
                                 Bytes sharedPerBlock,
                                 Bytes sharedCarveout);

} // namespace uvmasync

#endif // UVMASYNC_GPU_OCCUPANCY_HH
