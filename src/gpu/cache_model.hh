/**
 * @file
 * Per-kernel unified-L1 behaviour under the five configurations.
 *
 * A sampled synthetic access stream with each buffer's pattern is
 * driven through a SetAssocCache sized to the L1 share of the
 * configured L1/shared partition. Async memcpy reshapes the stream:
 * staged tile loads bypass L1 (cp.async fills shared memory via L2),
 * leaving only residual, more local accesses, and stores become
 * coalesced writebacks from shared memory — reproducing the large
 * miss-rate reductions the paper measures on lud (Figure 10).
 * UVM configurations lose part of the L1 to migration metadata and
 * prefetch-injected lines, which is what makes them sensitive to
 * oversized shared-memory carveouts (Figure 13).
 */

#ifndef UVMASYNC_GPU_CACHE_MODEL_HH
#define UVMASYNC_GPU_CACHE_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel_descriptor.hh"
#include "gpu/transfer_mode.hh"

namespace uvmasync
{

/** Measured L1 behaviour of one kernel under one configuration. */
struct CacheModelResult
{
    double loadMissRate = 0.0;
    double storeMissRate = 0.0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
};

/** Tunables of the stream sampling. */
struct CacheModelParams
{
    /** Number of sampled accesses fed through the cache. */
    std::size_t sampleAccesses = 120000;

    /** Residual L1 load traffic left when tiles ride cp.async. */
    double asyncResidualLoadFraction = 0.15;

    /** L1 share consumed by UVM machinery in managed configurations. */
    double uvmL1Pollution = 0.12;

    /** Extra pollution when the explicit prefetcher is active. */
    double prefetchL1Pollution = 0.13;
};

/**
 * Simulate the kernel's L1 under @p mode with a @p sharedCarveout
 * partition. Deterministic for a given @p seed.
 *
 * @param bufferBytes job buffer sizes indexed by KernelBufferUse::bufferId
 */
CacheModelResult
simulateL1(const GpuConfig &cfg, const KernelDescriptor &kd,
           const std::vector<Bytes> &bufferBytes, TransferMode mode,
           Bytes sharedCarveout, std::uint64_t seed,
           const CacheModelParams &params = {});

} // namespace uvmasync

#endif // UVMASYNC_GPU_CACHE_MODEL_HH
