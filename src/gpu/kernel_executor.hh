/**
 * @file
 * The GPU kernel timing and counter model.
 *
 * A kernel executes as waves of thread blocks over SM residency
 * slots. Each block loops over shared-memory tiles; per-tile time is
 * derived from the instruction mix, the memory system (L1 miss rates
 * from the cache model, L2/HBM bandwidth shares) and the configured
 * data-transfer mode:
 *
 *  - synchronous staging (standard/uvm*): tile load and compute
 *    serialise, loads pay the register-file staging penalty and a
 *    block-wide barrier per tile;
 *  - async memcpy: tile load and compute overlap (max instead of
 *    sum), the copy path bypasses the register file, but control
 *    instructions are added and shared memory is double-buffered
 *    (halving occupancy for shmem-limited kernels);
 *  - UVM modes additionally raise far faults through the
 *    MigrationEngine on first touch of non-resident chunks, stalling
 *    the issuing block, and pay GPU page-walk overhead.
 *
 * The model is throughput-analytic within a tile and event-ordered
 * across blocks/slots, which keeps GB-scale inputs simulable in
 * milliseconds while preserving the transfer/compute overlap that
 * the paper's results hinge on.
 */

#ifndef UVMASYNC_GPU_KERNEL_EXECUTOR_HH
#define UVMASYNC_GPU_KERNEL_EXECUTOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "gpu/cache_model.hh"
#include "gpu/gpu_config.hh"
#include "gpu/instruction_mix.hh"
#include "gpu/kernel_descriptor.hh"
#include "gpu/occupancy.hh"
#include "gpu/transfer_mode.hh"
#include "trace/trace.hh"

namespace uvmasync
{

class Injector;
class MigrationEngine;

/** Execution-environment configuration for the kernel executor. */
struct KernelExecConfig
{
    GpuConfig gpu;
    TransferMode mode = TransferMode::Standard;

    /** L1/shared partition; 0 selects gpu.defaultSharedCarveout. */
    Bytes sharedCarveout = 0;

    /** Required for UVM modes; ignored otherwise. */
    MigrationEngine *uvm = nullptr;

    /** Job buffer sizes indexed by KernelBufferUse::bufferId. */
    std::vector<Bytes> bufferBytes;

    /** bufferId -> PageTable range id (UVM modes). */
    std::vector<std::size_t> bufferRangeIds;

    std::uint64_t seed = 1;

    CacheModelParams cacheParams;

    /** @{ Synchronous-staging calibration. */
    /** Load-path inflation of the LDG->register->STS staging loop. */
    double regStagingPenalty = 1.9;
    /** Block-wide barrier cost per tile (cycles). */
    double barrierCyclesPerTile = 40.0;
    /** Async pipeline arrive/wait latency per tile, charged per
     * warp (every warp issues its own commit/wait_group). */
    double asyncWaitCyclesPerWarpTile = 30.0;
    /** @} */

    /** Upper bound of chunk-request groups per block (UVM modes). */
    std::uint32_t maxChunkGroupsPerBlock = 8;

    /**
     * Optional per-launch pipeline detail sink: launch overhead and
     * tile-compute spans, async fill span, double-buffer wait and
     * data-stall instants, all on @p traceLane.
     */
    Tracer *tracer = nullptr;
    std::uint32_t traceLane = 0;

    /** Optional fault injector: adds launch jitter when attached. */
    Injector *inject = nullptr;
};

/**
 * Closed-form launch estimate with all data device-resident — the
 * static-analysis view of a launch (analysis/cost_model.cc). Derived
 * from the same tile-timing derivation run() uses, so the estimate
 * and the simulation can only drift if run() itself changes.
 */
struct KernelStaticEstimate
{
    /** Launch wall time (overhead + waves x block time). */
    Tick launchPs = 0;

    double occupancy = 0.0;
    std::uint32_t blocksPerSm = 0;

    /** Wave-schedule geometry. */
    std::uint64_t waves = 0;
    Tick blockTimePs = 0;
};

/** Outcome of one kernel launch. */
struct KernelResult
{
    Tick startTick = 0;
    Tick endTick = 0;

    /** Wall time of the launch (including launch overhead). */
    Tick kernelTime() const { return endTick - startTick; }

    /** Aggregate data-wait time across blocks (UVM stalls). */
    Tick stallTime = 0;

    /** Dynamic instruction counts. */
    InstrMix instrs;

    /** L1 behaviour (Figure 10 metric). */
    double l1LoadMissRate = 0.0;
    double l1StoreMissRate = 0.0;

    /** Achieved occupancy and residency. */
    double occupancy = 0.0;
    std::uint32_t blocksPerSm = 0;

    /** Demand far faults raised during this launch. */
    std::uint64_t faults = 0;
};

/**
 * Executes kernels under one KernelExecConfig.
 */
class KernelExecutor
{
  public:
    explicit KernelExecutor(KernelExecConfig cfg);

    const KernelExecConfig &config() const { return cfg_; }

    /**
     * Simulate one launch of @p kd starting at @p start.
     */
    KernelResult run(const KernelDescriptor &kd, Tick start);

    /**
     * Closed-form resident-data estimate of one launch of @p kd.
     * Usable without a MigrationEngine even in UVM modes (the
     * derivation never touches migration state), which is what lets
     * the static cost model price kernels it will never run.
     */
    KernelStaticEstimate estimateResident(const KernelDescriptor &kd);

  private:
    /** Per-launch derived quantities shared by the helpers. */
    struct Derived
    {
        OccupancyResult occ;
        /** Blocks actually resident per SM (grid may undersubscribe
         * the residency limit). */
        std::uint32_t residentBlocks = 1;
        std::uint32_t effWarpsPerSm = 1;
        Bytes carveout = 0;
        double tileScale = 1.0;
        std::uint64_t tilesPerBlock = 0;
        Bytes tileLoadBytes = 0;
        Bytes tileStoreBytes = 0;
        std::uint32_t activeSms = 0;
        double parallelEff = 1.0;
        double tileTimePs = 0.0;  //!< slot-view per-tile time
        double fillTimePs = 0.0;  //!< async pipeline fill per block
        /** Double-buffer arrive/wait share of tileTimePs (async). */
        double asyncWaitPerTilePs = 0.0;
        CacheModelResult cache;
        InstrMix perTile;
    };

    Derived derive(const KernelDescriptor &kd) const;

    /** Memoised derive(): repeated launches of the same kernel reuse
     * the cache simulation and timing derivation. */
    const Derived &derivedFor(const KernelDescriptor &kd);

    /** Average locality of the staged read buffers. */
    double stagedReadLocality(const KernelDescriptor &kd) const;

    /**
     * Issue block @p b's group-@p g chunk demands at time @p t;
     * returns the tick at which the group's data is ready.
     */
    Tick requestGroup(const KernelDescriptor &kd, std::uint64_t b,
                      std::uint64_t g, std::uint64_t groups,
                      Tick t) const;

    KernelExecConfig cfg_;
    std::map<std::string, Derived> derivedCache_;
};

} // namespace uvmasync

#endif // UVMASYNC_GPU_KERNEL_EXECUTOR_HH
