/**
 * @file
 * GPU instruction-mix counters (the Figure 9 metric).
 */

#ifndef UVMASYNC_GPU_INSTRUCTION_MIX_HH
#define UVMASYNC_GPU_INSTRUCTION_MIX_HH

#include <string>

namespace uvmasync
{

/**
 * Dynamic instruction counts by class, as CUPTI would report them.
 * Stored as doubles because the executor scales analytic per-tile
 * counts by large block/tile products.
 */
struct InstrMix
{
    double memory = 0.0;
    double fp = 0.0;
    double integer = 0.0;
    double control = 0.0;

    double total() const { return memory + fp + integer + control; }

    InstrMix &operator+=(const InstrMix &o);
    InstrMix operator+(const InstrMix &o) const;
    InstrMix operator*(double k) const;

    /** Fraction of control instructions in the mix. */
    double controlFraction() const;

    /**
     * Empty string when every class count is finite and >= 0;
     * otherwise a description of the first offending class. Negative
     * or NaN counts flow silently through the arithmetic operators,
     * so anything that constructs a mix from user input (job files,
     * analytic descriptors) must check this.
     */
    std::string validate() const;

    std::string toString() const;
};

/**
 * Validate a mix expressed as *fractions of the total* (the Figure 9
 * normalised view): each class in [0, 1] and the four summing to 1
 * within @p tolerance. Empty string when valid.
 */
std::string validateMixFractions(const InstrMix &fractions,
                                 double tolerance = 1e-6);

} // namespace uvmasync

#endif // UVMASYNC_GPU_INSTRUCTION_MIX_HH
