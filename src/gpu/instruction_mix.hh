/**
 * @file
 * GPU instruction-mix counters (the Figure 9 metric).
 */

#ifndef UVMASYNC_GPU_INSTRUCTION_MIX_HH
#define UVMASYNC_GPU_INSTRUCTION_MIX_HH

#include <string>

namespace uvmasync
{

/**
 * Dynamic instruction counts by class, as CUPTI would report them.
 * Stored as doubles because the executor scales analytic per-tile
 * counts by large block/tile products.
 */
struct InstrMix
{
    double memory = 0.0;
    double fp = 0.0;
    double integer = 0.0;
    double control = 0.0;

    double total() const { return memory + fp + integer + control; }

    InstrMix &operator+=(const InstrMix &o);
    InstrMix operator+(const InstrMix &o) const;
    InstrMix operator*(double k) const;

    /** Fraction of control instructions in the mix. */
    double controlFraction() const;

    std::string toString() const;
};

} // namespace uvmasync

#endif // UVMASYNC_GPU_INSTRUCTION_MIX_HH
