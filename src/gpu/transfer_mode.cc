#include "gpu/transfer_mode.hh"

namespace uvmasync
{

bool
parseTransferMode(const std::string &text, TransferMode &out)
{
    for (TransferMode m : allTransferModes) {
        if (text == transferModeName(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

} // namespace uvmasync
