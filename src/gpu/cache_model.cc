#include "gpu/cache_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "mem/cache.hh"

namespace uvmasync
{

namespace
{

/** One interleaved source of sampled accesses. */
struct Stream
{
    StreamGenerator gen;
    Addr base;
    bool isStore;
    std::size_t quota;
    bool bypass; // probes skipped entirely (cp.async path)
};

} // namespace

CacheModelResult
simulateL1(const GpuConfig &cfg, const KernelDescriptor &kd,
           const std::vector<Bytes> &bufferBytes, TransferMode mode,
           Bytes sharedCarveout, std::uint64_t seed,
           const CacheModelParams &params)
{
    CacheModelResult res;

    bool async = usesAsyncCopy(mode);
    bool uvm = usesUvm(mode);

    // L1 is what the carveout leaves, minus what UVM machinery steals.
    double capacity =
        static_cast<double>(cfg.l1Capacity(sharedCarveout));
    if (uvm)
        capacity *= 1.0 - params.uvmL1Pollution;
    if (usesPrefetch(mode))
        capacity *= 1.0 - params.prefetchL1Pollution;

    Bytes granule = cfg.l1LineBytes * cfg.l1Ways;
    auto lines = static_cast<Bytes>(capacity) / granule;
    Bytes effCapacity = std::max<Bytes>(lines, 1) * granule;
    SetAssocCache l1("l1", effCapacity, cfg.l1LineBytes, cfg.l1Ways);

    // Build one sampled stream per (buffer, load/store) pair, with
    // quotas proportional to the traffic each contributes.
    std::vector<Stream> streams;
    double totalWeight = 0.0;
    struct Plan
    {
        AccessPattern pattern;
        Bytes footprint;
        bool isStore;
        bool bypass;
        double weight;
        std::size_t bufferId;
    };
    std::vector<Plan> plans;

    for (const KernelBufferUse &use : kd.buffers) {
        UVMASYNC_ASSERT(use.bufferId < bufferBytes.size(),
                        "%s: buffer id %zu out of range",
                        kd.name.c_str(), use.bufferId);
        Bytes bytes = bufferBytes[use.bufferId];
        double touched = std::clamp(use.touchedFraction, 0.0, 1.0);
        auto footprint = static_cast<Bytes>(
            static_cast<double>(bytes) * touched);
        if (use.pattern != AccessPattern::Broadcast) {
            // Each SM sees its slice of a partitioned buffer.
            footprint /= std::max<std::uint32_t>(1, cfg.smCount);
        }
        footprint = std::max<Bytes>(footprint, cfg.l1LineBytes * 4);

        if (use.read) {
            Plan p;
            p.pattern = use.pattern;
            p.footprint = footprint;
            p.isStore = false;
            p.bypass = false;
            p.weight = static_cast<double>(footprint);
            p.bufferId = use.bufferId;
            if (async && use.stagedThroughShared) {
                // Tile loads ride cp.async and never probe L1; a
                // residual fraction (spills, index loads) remains.
                // Its walk shape is unchanged but its working set is
                // much smaller because the hot data sits in shared.
                p.weight *= params.asyncResidualLoadFraction;
                p.footprint = std::max<Bytes>(
                    p.footprint / 64, cfg.l1LineBytes * 4);
            }
            plans.push_back(p);
            totalWeight += p.weight;
        }
        if (use.written) {
            Plan p;
            p.pattern = use.pattern;
            p.footprint = footprint;
            p.isStore = true;
            p.bypass = false;
            p.weight = static_cast<double>(footprint) * 0.5;
            p.bufferId = use.bufferId;
            if (async && use.stagedThroughShared) {
                // Results are staged in shared memory and written
                // back as coalesced, sequential lines.
                p.pattern = AccessPattern::Sequential;
            }
            plans.push_back(p);
            totalWeight += p.weight;
        }
    }

    if (plans.empty() || totalWeight <= 0.0)
        return res;

    std::uint64_t streamSeed = seed;
    for (const Plan &p : plans) {
        auto quota = static_cast<std::size_t>(
            std::ceil(p.weight / totalWeight *
                      static_cast<double>(params.sampleAccesses)));
        streams.push_back(Stream{
            StreamGenerator(p.pattern, p.footprint, 4, ++streamSeed),
            static_cast<Addr>(p.bufferId) << 40, p.isStore, quota,
            p.bypass});
    }

    // Interleave the streams round-robin until every quota drains;
    // this approximates the warp-interleaved issue order of an SM.
    bool progress = true;
    while (progress) {
        progress = false;
        for (Stream &s : streams) {
            if (s.quota == 0)
                continue;
            --s.quota;
            progress = true;
            Addr addr = s.base + s.gen.next();
            l1.access(addr, s.isStore);
        }
    }

    const CacheStats &st = l1.stats();
    res.loadMissRate = st.loadMissRate();
    res.storeMissRate = st.storeMissRate();
    res.loads = st.loads();
    res.stores = st.stores();
    return res;
}

} // namespace uvmasync
