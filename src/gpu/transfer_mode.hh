/**
 * @file
 * The five data-transfer configurations studied by the paper
 * (Section 3.1.3).
 */

#ifndef UVMASYNC_GPU_TRANSFER_MODE_HH
#define UVMASYNC_GPU_TRANSFER_MODE_HH

#include <array>
#include <string>

namespace uvmasync
{

/** The paper's five UVM / Async Memcpy configurations. */
enum class TransferMode
{
    Standard,         //!< cudaMalloc + cudaMemcpy, no async copy
    Async,            //!< explicit copies + global->shared async memcpy
    Uvm,              //!< cudaMallocManaged, demand paging
    UvmPrefetch,      //!< managed + cudaMemPrefetchAsync
    UvmPrefetchAsync, //!< managed + prefetch + async memcpy
};

inline constexpr std::array<TransferMode, 5> allTransferModes = {
    TransferMode::Standard,
    TransferMode::Async,
    TransferMode::Uvm,
    TransferMode::UvmPrefetch,
    TransferMode::UvmPrefetchAsync,
};

/** The paper's configuration name (e.g. "uvm_prefetch_async"). */
constexpr const char *
transferModeName(TransferMode m)
{
    switch (m) {
      case TransferMode::Standard: return "standard";
      case TransferMode::Async: return "async";
      case TransferMode::Uvm: return "uvm";
      case TransferMode::UvmPrefetch: return "uvm_prefetch";
      case TransferMode::UvmPrefetchAsync: return "uvm_prefetch_async";
    }
    return "unknown";
}

/** Parse a configuration name; returns true on success. */
bool parseTransferMode(const std::string &text, TransferMode &out);

/** Managed memory (UVM) in use? */
constexpr bool
usesUvm(TransferMode m)
{
    return m == TransferMode::Uvm || m == TransferMode::UvmPrefetch ||
           m == TransferMode::UvmPrefetchAsync;
}

/** Explicit bulk prefetch (cudaMemPrefetchAsync) in use? */
constexpr bool
usesPrefetch(TransferMode m)
{
    return m == TransferMode::UvmPrefetch ||
           m == TransferMode::UvmPrefetchAsync;
}

/** Global->shared asynchronous memcpy in use? */
constexpr bool
usesAsyncCopy(TransferMode m)
{
    return m == TransferMode::Async ||
           m == TransferMode::UvmPrefetchAsync;
}

} // namespace uvmasync

#endif // UVMASYNC_GPU_TRANSFER_MODE_HH
