/**
 * @file
 * GPU hardware description; defaults model the Nvidia A100 of the
 * paper's Table 1 (108 SMs, 40 GB HBM2, 192 KiB unified L1/shared
 * per SM, 164 KiB maximum shared-memory carveout).
 */

#ifndef UVMASYNC_GPU_GPU_CONFIG_HH
#define UVMASYNC_GPU_GPU_CONFIG_HH

#include <cstdint>

#include "common/types.hh"
#include "common/units.hh"

namespace uvmasync
{

/** Static description of the simulated GPU. */
struct GpuConfig
{
    /** @{ Compute resources. */
    std::uint32_t smCount = 108;
    Frequency clock = Frequency::fromMHz(1410.0);
    std::uint32_t coresPerSm = 64;       //!< FP32 lanes
    std::uint32_t maxThreadsPerSm = 2048;
    std::uint32_t maxBlocksPerSm = 32;
    std::uint32_t maxWarpsPerSm = 64;
    std::uint32_t warpSize = 32;
    /** @} */

    /** @{ On-chip memory. */
    Bytes unifiedL1Bytes = kib(192);     //!< L1 + shared per SM
    Bytes maxSharedBytes = kib(164);     //!< largest legal carveout
    Bytes defaultSharedCarveout = kib(32); //!< paper's static default
    Bytes l1LineBytes = 32;              //!< sector granularity
    std::uint32_t l1Ways = 4;
    /** @} */

    /** @{ Memory system bandwidths and capacities. */
    Bandwidth hbmBandwidth = Bandwidth::fromGBps(1400.0);
    Bandwidth l2Bandwidth = Bandwidth::fromGBps(4500.0);
    Bytes l2CapacityBytes = mib(40);
    /** Per-SM load/store pipe at saturation. */
    Bandwidth smLsuBandwidth = Bandwidth::fromGBps(160.0);
    /** @} */

    /** @{ Instruction throughputs (operations per SM per cycle). */
    double fpPerCycle = 64.0;
    double intPerCycle = 64.0;
    double ctrlPerCycle = 16.0;
    double memIssuePerCycle = 32.0;      //!< LD/ST issue slots
    /** @} */

    /** @{ Fixed overheads. */
    Tick kernelLaunchOverhead = microseconds(8);
    /** @} */

    /** @{ Async-copy (cp.async) modelling. */
    /** Extra control instructions per thread per tile (commit/wait). */
    double asyncCtrlPerThreadTile = 14.0;
    /** Extra integer (address) instructions per thread per tile. */
    double asyncIntPerThreadTile = 4.0;
    /** Bandwidth bonus of the register-file-bypassing copy path. */
    double asyncCopyBwBonus = 1.25;
    /** Shared-memory multiplier from double buffering. */
    double asyncSharedMemFactor = 2.0;
    /**
     * Multiplier on the per-warp wait cost, selecting the async API:
     * 1.0 models the CUDA Pipeline API; ~1.9 models Arrive/Wait
     * barriers, which Svedin et al. (and the paper, Section 3.2.1)
     * found slower.
     */
    double asyncWaitMultiplier = 1.0;
    /** @} */

    /** @{ UVM-resident overheads (page walks on the GPU side). */
    Bytes gpuPageBytes = kib(4);
    /** Cycles per GPU page walk on a GPU-TLB miss. */
    double pageWalkCycles = 400.0;
    /** Fraction of first-touch pages that miss the GPU TLB. */
    double tlbMissFraction = 0.2;
    /** @} */

    /** L1 capacity left by a given shared-memory carveout. */
    Bytes
    l1Capacity(Bytes sharedCarveout) const
    {
        if (sharedCarveout >= unifiedL1Bytes)
            return 0;
        return unifiedL1Bytes - sharedCarveout;
    }
};

} // namespace uvmasync

#endif // UVMASYNC_GPU_GPU_CONFIG_HH
