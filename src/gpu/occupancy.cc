#include "gpu/occupancy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace uvmasync
{

OccupancyResult
computeOccupancy(const GpuConfig &cfg, std::uint32_t threadsPerBlock,
                 Bytes sharedPerBlock, Bytes sharedCarveout)
{
    UVMASYNC_ASSERT(threadsPerBlock > 0, "kernel with zero threads");
    UVMASYNC_ASSERT(threadsPerBlock <= cfg.maxThreadsPerSm,
                    "block of %u threads exceeds SM capacity %u",
                    threadsPerBlock, cfg.maxThreadsPerSm);
    UVMASYNC_ASSERT(sharedCarveout <= cfg.maxSharedBytes,
                    "carveout %llu exceeds hardware maximum %llu",
                    static_cast<unsigned long long>(sharedCarveout),
                    static_cast<unsigned long long>(cfg.maxSharedBytes));

    OccupancyResult res;

    std::uint32_t by_threads = cfg.maxThreadsPerSm / threadsPerBlock;
    std::uint32_t by_blocks = cfg.maxBlocksPerSm;

    std::uint32_t by_shmem = cfg.maxBlocksPerSm;
    if (sharedPerBlock > 0) {
        if (sharedPerBlock > sharedCarveout) {
            // The requested stage does not fit: run one block per SM
            // with proportionally shallower tiles.
            res.tileScale = static_cast<double>(sharedCarveout) /
                            static_cast<double>(sharedPerBlock);
            res.tileScale = std::max(res.tileScale, 1.0 / 64.0);
            by_shmem = 1;
        } else {
            by_shmem = static_cast<std::uint32_t>(
                sharedCarveout / sharedPerBlock);
        }
    }

    res.blocksPerSm = std::min({by_threads, by_blocks, by_shmem});
    res.blocksPerSm = std::max<std::uint32_t>(res.blocksPerSm, 1);

    if (res.blocksPerSm == by_blocks) {
        res.limiter = "blocks";
    } else if (res.blocksPerSm == by_threads) {
        res.limiter = "threads";
    } else {
        res.limiter = "shmem";
    }

    std::uint32_t warpsPerBlock =
        (threadsPerBlock + cfg.warpSize - 1) / cfg.warpSize;
    res.warpsPerSm = std::min(res.blocksPerSm * warpsPerBlock,
                              cfg.maxWarpsPerSm);
    res.occupancy = static_cast<double>(res.warpsPerSm) /
                    static_cast<double>(cfg.maxWarpsPerSm);
    return res;
}

} // namespace uvmasync
