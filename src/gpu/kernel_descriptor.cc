#include "gpu/kernel_descriptor.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hh"

namespace uvmasync
{

KernelDescriptor
makeStreamKernel(std::string name, std::uint64_t gridBlocks,
                 std::uint32_t threadsPerBlock, Bytes totalLoadBytes,
                 Bytes sharedBytesPerBlock, Bytes elementBytes,
                 double flopsPerElement, double intsPerElement,
                 double ctrlPerElement, double storeRatio)
{
    // These are user inputs (job files, example code), not simulator
    // invariants: reject them as configuration errors with the fix
    // spelled out rather than aborting through an assert.
    if (gridBlocks == 0 || threadsPerBlock == 0)
        fatal("kernel '%s': launch geometry %llu blocks x %u threads "
              "is empty; both counts must be >= 1",
              name.c_str(),
              static_cast<unsigned long long>(gridBlocks),
              threadsPerBlock);
    if (elementBytes == 0)
        fatal("kernel '%s': element size must be >= 1 byte (4 for "
              "float32)",
              name.c_str());
    if (!(flopsPerElement >= 0.0) || !(intsPerElement >= 0.0) ||
        !(ctrlPerElement >= 0.0))
        fatal("kernel '%s': per-element instruction costs must be "
              "finite and >= 0 (got flops=%g ints=%g ctrl=%g)",
              name.c_str(), flopsPerElement, intsPerElement,
              ctrlPerElement);
    if (!(storeRatio >= 0.0))
        fatal("kernel '%s': store_ratio must be finite and >= 0 "
              "(got %g); it is stored bytes per loaded byte",
              name.c_str(), storeRatio);

    KernelDescriptor kd;
    kd.name = std::move(name);
    kd.gridBlocks = gridBlocks;
    kd.threadsPerBlock = threadsPerBlock;
    kd.sharedBytesPerBlock = sharedBytesPerBlock;

    // One tile fills the shared-memory staging buffer.
    kd.tileLoadBytes = std::max<Bytes>(sharedBytesPerBlock, elementBytes);
    Bytes per_block = (totalLoadBytes + gridBlocks - 1) / gridBlocks;
    kd.tilesPerBlock = std::max<std::uint64_t>(
        1, (per_block + kd.tileLoadBytes - 1) / kd.tileLoadBytes);
    kd.tileStoreBytes = static_cast<Bytes>(
        std::ceil(static_cast<double>(kd.tileLoadBytes) * storeRatio));

    double elements = static_cast<double>(kd.tileLoadBytes) /
                      static_cast<double>(elementBytes);
    // Loads plus stores issue through the LSU; each element is one
    // load instruction and storeRatio store instructions.
    kd.memPerTile = elements * (1.0 + storeRatio);
    kd.fpPerTile = elements * flopsPerElement;
    kd.intPerTile = elements * intsPerElement;
    // Loop bookkeeping: one branch per thread per tile on top of the
    // per-element control cost.
    kd.ctrlPerTile = elements * ctrlPerElement +
                     static_cast<double>(threadsPerBlock);
    return kd;
}

} // namespace uvmasync
