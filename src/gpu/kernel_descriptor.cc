#include "gpu/kernel_descriptor.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hh"

namespace uvmasync
{

KernelDescriptor
makeStreamKernel(std::string name, std::uint64_t gridBlocks,
                 std::uint32_t threadsPerBlock, Bytes totalLoadBytes,
                 Bytes sharedBytesPerBlock, Bytes elementBytes,
                 double flopsPerElement, double intsPerElement,
                 double ctrlPerElement, double storeRatio)
{
    UVMASYNC_ASSERT(gridBlocks > 0 && threadsPerBlock > 0,
                    "%s: empty launch geometry", name.c_str());
    UVMASYNC_ASSERT(elementBytes > 0, "%s: zero element size",
                    name.c_str());

    KernelDescriptor kd;
    kd.name = std::move(name);
    kd.gridBlocks = gridBlocks;
    kd.threadsPerBlock = threadsPerBlock;
    kd.sharedBytesPerBlock = sharedBytesPerBlock;

    // One tile fills the shared-memory staging buffer.
    kd.tileLoadBytes = std::max<Bytes>(sharedBytesPerBlock, elementBytes);
    Bytes per_block = (totalLoadBytes + gridBlocks - 1) / gridBlocks;
    kd.tilesPerBlock = std::max<std::uint64_t>(
        1, (per_block + kd.tileLoadBytes - 1) / kd.tileLoadBytes);
    kd.tileStoreBytes = static_cast<Bytes>(
        std::ceil(static_cast<double>(kd.tileLoadBytes) * storeRatio));

    double elements = static_cast<double>(kd.tileLoadBytes) /
                      static_cast<double>(elementBytes);
    // Loads plus stores issue through the LSU; each element is one
    // load instruction and storeRatio store instructions.
    kd.memPerTile = elements * (1.0 + storeRatio);
    kd.fpPerTile = elements * flopsPerElement;
    kd.intPerTile = elements * intsPerElement;
    // Loop bookkeeping: one branch per thread per tile on top of the
    // per-element control cost.
    kd.ctrlPerTile = elements * ctrlPerElement +
                     static_cast<double>(threadsPerBlock);
    return kd;
}

} // namespace uvmasync
