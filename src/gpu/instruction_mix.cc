#include "gpu/instruction_mix.hh"

#include <cmath>

#include "common/table.hh"

namespace uvmasync
{

InstrMix &
InstrMix::operator+=(const InstrMix &o)
{
    memory += o.memory;
    fp += o.fp;
    integer += o.integer;
    control += o.control;
    return *this;
}

InstrMix
InstrMix::operator+(const InstrMix &o) const
{
    InstrMix out = *this;
    out += o;
    return out;
}

InstrMix
InstrMix::operator*(double k) const
{
    return InstrMix{memory * k, fp * k, integer * k, control * k};
}

double
InstrMix::controlFraction() const
{
    double t = total();
    return t > 0.0 ? control / t : 0.0;
}

std::string
InstrMix::validate() const
{
    const struct
    {
        const char *name;
        double value;
    } classes[] = {{"memory", memory},
                   {"fp", fp},
                   {"integer", integer},
                   {"control", control}};
    for (const auto &c : classes) {
        // !(x >= 0) also catches NaN.
        if (!(c.value >= 0.0) || std::isinf(c.value))
            return std::string(c.name) + " count " +
                   fmtDouble(c.value, 3) +
                   " is not a finite non-negative number";
    }
    return "";
}

std::string
validateMixFractions(const InstrMix &fractions, double tolerance)
{
    std::string err = fractions.validate();
    if (!err.empty())
        return err;
    const struct
    {
        const char *name;
        double value;
    } classes[] = {{"memory", fractions.memory},
                   {"fp", fractions.fp},
                   {"integer", fractions.integer},
                   {"control", fractions.control}};
    for (const auto &c : classes) {
        if (c.value > 1.0)
            return std::string(c.name) + " fraction " +
                   fmtDouble(c.value, 3) + " exceeds 1";
    }
    double sum = fractions.total();
    if (std::abs(sum - 1.0) > tolerance)
        return "fractions sum to " + fmtDouble(sum, 6) +
               ", expected 1";
    return "";
}

std::string
InstrMix::toString() const
{
    return "mem=" + fmtCount(memory) + " fp=" + fmtCount(fp) +
           " int=" + fmtCount(integer) + " ctrl=" + fmtCount(control);
}

} // namespace uvmasync
