#include "gpu/instruction_mix.hh"

#include "common/table.hh"

namespace uvmasync
{

InstrMix &
InstrMix::operator+=(const InstrMix &o)
{
    memory += o.memory;
    fp += o.fp;
    integer += o.integer;
    control += o.control;
    return *this;
}

InstrMix
InstrMix::operator+(const InstrMix &o) const
{
    InstrMix out = *this;
    out += o;
    return out;
}

InstrMix
InstrMix::operator*(double k) const
{
    return InstrMix{memory * k, fp * k, integer * k, control * k};
}

double
InstrMix::controlFraction() const
{
    double t = total();
    return t > 0.0 ? control / t : 0.0;
}

std::string
InstrMix::toString() const
{
    return "mem=" + fmtCount(memory) + " fp=" + fmtCount(fp) +
           " int=" + fmtCount(integer) + " ctrl=" + fmtCount(control);
}

} // namespace uvmasync
