#include "gpu/kernel_executor.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.hh"
#include "inject/injector.hh"
#include "xfer/migration_engine.hh"

namespace uvmasync
{

namespace
{

/** Knuth multiplicative hash onto [0, n). */
std::uint64_t
permuteIndex(std::uint64_t i, std::uint64_t n)
{
    if (n <= 1)
        return 0;
    return (i * 2654435761ull + 0x9e3779b9ull) % n;
}

} // namespace

KernelExecutor::KernelExecutor(KernelExecConfig cfg)
    : cfg_(std::move(cfg))
{
    // UVM-mode executors need a MigrationEngine to *run*, but not to
    // derive timings; run() checks so the static cost model can use
    // estimateResident() on an engine-less executor.
}

double
KernelExecutor::stagedReadLocality(const KernelDescriptor &kd) const
{
    double weight = 0.0;
    double acc = 0.0;
    for (const KernelBufferUse &use : kd.buffers) {
        if (!use.read)
            continue;
        double w = static_cast<double>(cfg_.bufferBytes[use.bufferId]) *
                   use.touchedFraction;
        acc += patternLocality(use.pattern) * w;
        weight += w;
    }
    return weight > 0.0 ? acc / weight : 0.7;
}

KernelExecutor::Derived
KernelExecutor::derive(const KernelDescriptor &kd) const
{
    const GpuConfig &gpu = cfg_.gpu;
    // A kernel only has an async variant if it stages tiles through
    // shared memory (pool/shortcut-style kernels keep their plain
    // form even in async configurations).
    bool staged = false;
    for (const KernelBufferUse &use : kd.buffers) {
        if (use.read && use.stagedThroughShared)
            staged = true;
    }
    bool async = usesAsyncCopy(cfg_.mode) && staged;

    Derived d;
    d.carveout = cfg_.sharedCarveout ? cfg_.sharedCarveout
                                     : gpu.defaultSharedCarveout;

    Bytes shared_req = kd.sharedBytesPerBlock;
    if (async) {
        shared_req = static_cast<Bytes>(
            std::ceil(static_cast<double>(shared_req) *
                      gpu.asyncSharedMemFactor));
    }
    d.occ = computeOccupancy(gpu, kd.threadsPerBlock, shared_req,
                             d.carveout);
    d.tileScale = d.occ.tileScale;

    d.tileLoadBytes = std::max<Bytes>(
        1, static_cast<Bytes>(static_cast<double>(kd.tileLoadBytes) *
                              d.tileScale));
    d.tileStoreBytes = static_cast<Bytes>(
        static_cast<double>(kd.tileStoreBytes) * d.tileScale);
    d.tilesPerBlock = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(static_cast<double>(kd.tilesPerBlock) /
                         d.tileScale)));

    d.activeSms = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        gpu.smCount, std::max<std::uint64_t>(1, kd.gridBlocks)));
    // A grid smaller than the residency limit leaves SMs holding
    // fewer blocks than the occupancy calculation allows.
    auto gridPerSm = static_cast<std::uint32_t>(
        (kd.gridBlocks + d.activeSms - 1) / d.activeSms);
    d.residentBlocks = std::min(d.occ.blocksPerSm, gridPerSm);
    d.residentBlocks = std::max<std::uint32_t>(d.residentBlocks, 1);
    std::uint32_t warpsPerBlock =
        (kd.threadsPerBlock + gpu.warpSize - 1) / gpu.warpSize;
    d.effWarpsPerSm = std::min(d.residentBlocks * warpsPerBlock,
                               gpu.maxWarpsPerSm);
    d.parallelEff = std::min(
        1.0, static_cast<double>(d.effWarpsPerSm) /
                 std::max(1.0, kd.warpsToSaturate));

    d.cache = simulateL1(gpu, kd, cfg_.bufferBytes, cfg_.mode,
                         d.carveout, cfg_.seed, cfg_.cacheParams);

    // Per-tile instruction mix: element-proportional parts scale with
    // the tile, async adds fixed per-thread pipeline management.
    d.perTile = InstrMix{kd.memPerTile, kd.fpPerTile, kd.intPerTile,
                         kd.ctrlPerTile} *
                d.tileScale;
    if (async) {
        double threads = static_cast<double>(kd.threadsPerBlock);
        d.perTile.control += gpu.asyncCtrlPerThreadTile * threads;
        d.perTile.integer += gpu.asyncIntPerThreadTile * threads;
    }

    // --- Memory path (slot view: R blocks share one SM) ---
    double r = static_cast<double>(d.residentBlocks);
    double l1Bw = gpu.smLsuBandwidth.bytesPerSecond();
    double l2Share = gpu.l2Bandwidth.bytesPerSecond() /
                     static_cast<double>(d.activeSms);
    double hbmEff = 0.45 + 0.55 * stagedReadLocality(kd);
    double hbmShare = gpu.hbmBandwidth.bytesPerSecond() * hbmEff /
                      static_cast<double>(d.activeSms);

    // L2 residency: the re-read share of the kernel's load traffic
    // (descriptor traffic beyond the touched footprint) hits the
    // 40 MB L2 when the read working set fits it — gemm-style weight
    // tiles never leave L2; GB-scale streams never enter it.
    double readFootprint = 0.0;
    for (const KernelBufferUse &use : kd.buffers) {
        if (use.read) {
            readFootprint +=
                static_cast<double>(cfg_.bufferBytes[use.bufferId]) *
                use.touchedFraction;
        }
    }
    double totalLoad = static_cast<double>(kd.totalLoadBytes());
    double reRead =
        totalLoad > 0.0
            ? std::max(0.0, 1.0 - readFootprint / totalLoad)
            : 0.0;
    double l2Fit =
        readFootprint > 0.0
            ? std::min(1.0, static_cast<double>(
                                gpu.l2CapacityBytes) /
                                readFootprint)
            : 0.0;
    double l2Hit = reRead * l2Fit;
    double missBw =
        1.0 / (l2Hit / l2Share +
               (1.0 - l2Hit) / std::min(l2Share, hbmShare));

    // A miss fetches a whole sector, so the memory-side traffic per
    // payload byte is missRate * (sector / element). Sequential
    // streams resolve to ~1.0 (every byte crosses HBM once); reuse
    // patterns land below it; random 4 B gathers overfetch up to 8x.
    double sectorPerElement =
        static_cast<double>(gpu.l1LineBytes) / 4.0;

    // UVM machinery (migration metadata, prefetch-injected lines)
    // evicts in-use sectors, so some are fetched twice; the smaller
    // the L1 share of the partition, the worse the refetching — the
    // Figure 13 "too much shared memory hurts UVM" effect.
    double uvmRefetch = 1.0;
    if (usesUvm(cfg_.mode)) {
        double l1Share =
            static_cast<double>(gpu.l1Capacity(d.carveout)) /
            static_cast<double>(gpu.unifiedL1Bytes);
        uvmRefetch += 0.35 * (1.0 - l1Share);
    }

    // The synchronous load path: hits from L1, miss traffic from
    // L2/HBM at sector granularity.
    double m = d.cache.loadMissRate;
    double syncLoadBw =
        1.0 / ((1.0 - m) / l1Bw +
               m * sectorPerElement * uvmRefetch / missBw);

    double effLoadBw = syncLoadBw;
    if (async) {
        // cp.async bypasses L1 for the staged buffers: their gather
        // pattern's raw sector traffic hits L2/HBM directly (reuse
        // lives in shared memory, which the descriptor's tile
        // traffic already encodes). Buffers marked unstaged keep the
        // synchronous L1 path; the effective bandwidth is the
        // byte-weighted harmonic blend of the two.
        double stagedW = 0.0;
        double unstagedW = 0.0;
        double traffic = 0.0;
        for (const KernelBufferUse &use : kd.buffers) {
            if (!use.read)
                continue;
            double w =
                static_cast<double>(cfg_.bufferBytes[use.bufferId]) *
                use.touchedFraction;
            if (use.stagedThroughShared) {
                traffic += patternSectorTraffic(use.pattern) * w;
                stagedW += w;
            } else {
                unstagedW += w;
            }
        }
        traffic = stagedW > 0.0 ? traffic / stagedW : 1.0;
        double asyncBw =
            missBw / (traffic * uvmRefetch) * gpu.asyncCopyBwBonus;
        double total = stagedW + unstagedW;
        if (total > 0.0) {
            effLoadBw = 1.0 / (stagedW / total / asyncBw +
                               unstagedW / total / syncLoadBw);
        } else {
            effLoadBw = asyncBw;
        }
    }

    double ms = d.cache.storeMissRate;
    double storeTraffic = ms * sectorPerElement;
    double effStoreBw =
        1.0 / ((1.0 - ms) / l1Bw + storeTraffic / missBw);

    // Memory-level parallelism: sustaining the load path needs enough
    // resident warps to keep requests outstanding; an under-occupied
    // SM cannot saturate even its HBM share (the thread-count
    // sensitivity of Figure 12).
    double loadPs = static_cast<double>(d.tileLoadBytes) * r * 1e12 /
                    (effLoadBw * d.parallelEff);
    double storePs = static_cast<double>(d.tileStoreBytes) * r * 1e12 /
                     (effStoreBw * d.parallelEff);

    // --- Compute path ---
    double cycles = d.perTile.fp / gpu.fpPerCycle +
                    d.perTile.integer / gpu.intPerCycle +
                    d.perTile.control / gpu.ctrlPerCycle +
                    d.perTile.memory / gpu.memIssuePerCycle *
                        (async ? 0.5 : 1.0);
    if (usesUvm(cfg_.mode)) {
        double pages = static_cast<double>(d.tileLoadBytes) /
                       static_cast<double>(gpu.gpuPageBytes);
        cycles += pages * gpu.pageWalkCycles * gpu.tlbMissFraction;
    }
    double period = gpu.clock.periodPs();
    double computePs = cycles * period * r / d.parallelEff;
    if (async)
        computePs *= std::max(1.0, kd.asyncComputePenalty);

    // --- Tile pipeline shaping per mode ---
    // Load and compute proceed on different pipes (LSU/HBM vs cores)
    // and overlap across warps in both modes; the slower pipe bounds
    // the tile. The sync path pays the register staging penalty on
    // its loads and a block barrier; the async path pays the pipeline
    // wait and its extra control instructions (already folded into
    // computePs via the instruction mix).
    if (async) {
        // Every warp commits and drains its own wait_group, and the
        // drains convoy at the stage boundary — the cost grows
        // superlinearly with warps per block, which is why wide
        // blocks (shallow per-thread buffers) profit least from
        // async memcpy (Figure 12's 1024-thread point).
        double warps = static_cast<double>(warpsPerBlock);
        double wait = cfg_.asyncWaitCyclesPerWarpTile *
                      gpu.asyncWaitMultiplier * warps * period * r /
                      d.parallelEff;
        d.tileTimePs = std::max(loadPs + storePs, computePs) + wait;
        d.fillTimePs = loadPs;
        d.asyncWaitPerTilePs = wait;
    } else {
        double barrier = cfg_.barrierCyclesPerTile * period * r /
                         d.parallelEff;
        d.tileTimePs =
            std::max(loadPs * cfg_.regStagingPenalty + storePs,
                     computePs) +
            barrier;
        d.fillTimePs = 0.0;
    }
    return d;
}

Tick
KernelExecutor::requestGroup(const KernelDescriptor &kd, std::uint64_t b,
                             std::uint64_t g, std::uint64_t groups,
                             Tick t) const
{
    MigrationEngine &uvm = *cfg_.uvm;
    Bytes chunkBytes = uvm.config().chunkBytes;

    Tick ready = t;
    for (const KernelBufferUse &use : kd.buffers) {
        if (use.touchedFraction <= 0.0)
            continue;
        std::size_t rangeId = cfg_.bufferRangeIds[use.bufferId];
        Bytes bytes = cfg_.bufferBytes[use.bufferId];
        std::uint64_t chunks = (bytes + chunkBytes - 1) / chunkBytes;
        auto touched = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(chunks) *
                      std::clamp(use.touchedFraction, 0.0, 1.0)));
        if (touched == 0)
            continue;

        std::uint64_t blocks = std::max<std::uint64_t>(
            1, kd.gridBlocks);
        // Map this block onto its slice of the touched chunks.
        std::uint64_t pos = b;
        if (use.pattern == AccessPattern::Irregular)
            pos = permuteIndex(b, blocks);
        std::uint64_t lo = pos * touched / blocks;
        std::uint64_t hi = (pos + 1) * touched / blocks;
        if (hi <= lo)
            hi = lo + 1;

        // This group's share of the block's span.
        std::uint64_t span = hi - lo;
        std::uint64_t glo = lo + g * span / groups;
        std::uint64_t ghi = lo + (g + 1) * span / groups;
        if (g + 1 == groups)
            ghi = hi;

        for (std::uint64_t c = glo; c < ghi && c < chunks; ++c) {
            std::uint64_t chunk = c;
            if (use.pattern == AccessPattern::Random)
                chunk = permuteIndex(c * blocks + b, touched);
            ready = std::max(ready,
                             uvm.requestChunk(rangeId, chunk, t));
        }
    }
    return ready;
}

const KernelExecutor::Derived &
KernelExecutor::derivedFor(const KernelDescriptor &kd)
{
    auto it = derivedCache_.find(kd.name);
    if (it == derivedCache_.end())
        it = derivedCache_.emplace(kd.name, derive(kd)).first;
    return it->second;
}

KernelStaticEstimate
KernelExecutor::estimateResident(const KernelDescriptor &kd)
{
    const Derived &d = derivedFor(kd);

    std::uint64_t slots = static_cast<std::uint64_t>(d.activeSms) *
                          d.residentBlocks;
    slots = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(slots, kd.gridBlocks));
    auto blockTime = static_cast<Tick>(
        std::ceil(d.tileTimePs * static_cast<double>(d.tilesPerBlock) +
                  d.fillTimePs));
    blockTime = std::max<Tick>(blockTime, 1);

    KernelStaticEstimate est;
    est.waves = (kd.gridBlocks + slots - 1) / slots;
    est.blockTimePs = blockTime;
    est.launchPs = cfg_.gpu.kernelLaunchOverhead +
                   static_cast<Tick>(est.waves) * blockTime;
    est.occupancy = d.occ.occupancy;
    est.blocksPerSm = d.occ.blocksPerSm;
    return est;
}

KernelResult
KernelExecutor::run(const KernelDescriptor &kd, Tick start)
{
    const Derived &d = derivedFor(kd);
    bool uvm = usesUvm(cfg_.mode);
    if (uvm) {
        UVMASYNC_ASSERT(cfg_.uvm != nullptr,
                        "UVM mode requires a MigrationEngine");
        UVMASYNC_ASSERT(cfg_.bufferRangeIds.size() ==
                            cfg_.bufferBytes.size(),
                        "range-id map must cover every buffer");
    }

    KernelResult res;
    res.startTick = start;
    res.l1LoadMissRate = d.cache.loadMissRate;
    res.l1StoreMissRate = d.cache.storeMissRate;
    res.occupancy = d.occ.occupancy;
    res.blocksPerSm = d.occ.blocksPerSm;

    std::uint64_t faultsBefore = uvm ? cfg_.uvm->jobFaults() : 0;

    Tick launchDone = start + cfg_.gpu.kernelLaunchOverhead;
    // Injected launch jitter: queueing noise between the driver call
    // and the grid actually starting (contended scheduler, clock
    // ramp); everything downstream shifts with launchDone.
    if (cfg_.inject)
        launchDone += cfg_.inject->launchJitter(start);
    std::uint64_t slots = static_cast<std::uint64_t>(d.activeSms) *
                          d.residentBlocks;
    slots = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(slots, kd.gridBlocks));

    auto blockTime = static_cast<Tick>(
        std::ceil(d.tileTimePs * static_cast<double>(d.tilesPerBlock) +
                  d.fillTimePs));
    blockTime = std::max<Tick>(blockTime, 1);

    // When no block can stall on data, block times are uniform and
    // the wave schedule has a closed form; this covers the explicit
    // modes and the steady state of iterative UVM kernels.
    bool dataResident =
        !uvm || (cfg_.uvm->allRangesResident() &&
                 cfg_.uvm->latestReadyTick() <= launchDone);

    Tick end = launchDone;
    Tick stall = 0;
    if (dataResident) {
        std::uint64_t waves =
            (kd.gridBlocks + slots - 1) / slots;
        end = launchDone + static_cast<Tick>(waves) * blockTime;
    } else {
        // Event-ordered interleaving: blocks progress through chunk
        // groups, and the globally earliest continuation always runs
        // next so that demand requests reach the FIFO fault/link
        // resources in time order.
        std::uint64_t groups = std::max<std::uint32_t>(
            1, cfg_.maxChunkGroupsPerBlock);
        Tick perGroupCompute = std::max<Tick>(blockTime / groups, 1);

        struct Continuation
        {
            Tick when;
            std::uint64_t block;
            std::uint64_t group;

            bool
            operator>(const Continuation &o) const
            {
                if (when != o.when)
                    return when > o.when;
                if (block != o.block)
                    return block > o.block;
                return group > o.group;
            }
        };
        std::priority_queue<Continuation, std::vector<Continuation>,
                            std::greater<>>
            pending;

        std::uint64_t nextBlock = std::min<std::uint64_t>(
            slots, kd.gridBlocks);
        for (std::uint64_t b = 0; b < nextBlock; ++b)
            pending.push(Continuation{launchDone, b, 0});

        while (!pending.empty()) {
            Continuation c = pending.top();
            pending.pop();
            if (c.group == groups) {
                // Block finished; its slot picks up the next block.
                end = std::max(end, c.when);
                if (nextBlock < kd.gridBlocks)
                    pending.push(
                        Continuation{c.when, nextBlock++, 0});
                continue;
            }
            Tick ready = requestGroup(kd, c.block, c.group, groups,
                                      c.when);
            stall += ready - c.when;
            if (cfg_.tracer && ready > c.when) {
                cfg_.tracer->instant(TraceCategory::Kernel,
                                     TraceName::DataStall,
                                     cfg_.traceLane, c.when,
                                     ready - c.when);
            }
            pending.push(Continuation{ready + perGroupCompute,
                                      c.block, c.group + 1});
        }
    }

    if (cfg_.tracer) {
        Tracer &tr = *cfg_.tracer;
        tr.span(TraceCategory::Kernel, TraceName::KernelLaunch,
                cfg_.traceLane, start, launchDone, kd.gridBlocks, 0,
                kd.name);
        // TileCompute before AsyncFill: equal starts must arrive
        // outermost-first for the nesting checker.
        tr.span(TraceCategory::Kernel, TraceName::TileCompute,
                cfg_.traceLane, launchDone, end, d.tilesPerBlock,
                slots, kd.name);
        if (d.fillTimePs > 0.0) {
            auto fill = static_cast<Tick>(std::ceil(d.fillTimePs));
            tr.span(TraceCategory::Kernel, TraceName::AsyncFill,
                    cfg_.traceLane, launchDone,
                    std::min(end, launchDone + fill));
        }
        if (d.asyncWaitPerTilePs > 0.0) {
            auto wait = static_cast<std::uint64_t>(
                d.asyncWaitPerTilePs *
                static_cast<double>(d.tilesPerBlock));
            tr.instant(TraceCategory::Kernel,
                       TraceName::DoubleBufferWait, cfg_.traceLane,
                       end, wait);
        }
    }

    res.endTick = end;
    res.stallTime = stall;
    res.instrs = d.perTile * (static_cast<double>(d.tilesPerBlock) *
                              static_cast<double>(kd.gridBlocks));
    res.faults = uvm ? cfg_.uvm->jobFaults() - faultsBefore : 0;
    return res;
}

} // namespace uvmasync
