/**
 * @file
 * Workload-facing description of one CUDA kernel.
 *
 * The executor does not interpret source code; a kernel is a grid of
 * blocks, each looping over shared-memory-sized tiles with an
 * analytic per-tile instruction mix. This is exactly the structure of
 * the paper's benchmark kernels (Figure 3's load-tile/compute loop).
 */

#ifndef UVMASYNC_GPU_KERNEL_DESCRIPTOR_HH
#define UVMASYNC_GPU_KERNEL_DESCRIPTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/access_pattern.hh"

namespace uvmasync
{

/** How a kernel uses one of the job's buffers. */
struct KernelBufferUse
{
    /** Index into the job's buffer list. */
    std::size_t bufferId = 0;

    /** Walk shape over the buffer. */
    AccessPattern pattern = AccessPattern::Sequential;

    bool read = true;
    bool written = false;

    /** Fraction of the buffer the kernel actually touches. */
    double touchedFraction = 1.0;

    /**
     * Whether tiles of this buffer are staged through shared memory
     * (and thus ride the async-copy pipeline in async modes).
     */
    bool stagedThroughShared = true;
};

/**
 * Analytic kernel description.
 *
 * Instruction counts are per *tile per block*, summed over all
 * threads of the block; the executor multiplies by tiles and blocks.
 */
struct KernelDescriptor
{
    std::string name = "kernel";

    /** @{ Launch geometry. */
    std::uint64_t gridBlocks = 1;
    std::uint32_t threadsPerBlock = 256;
    /** @} */

    /** @{ Tile structure. */
    std::uint64_t tilesPerBlock = 1;
    Bytes tileLoadBytes = kib(32);   //!< global->shared per tile
    Bytes tileStoreBytes = 0;        //!< shared/reg->global per tile
    Bytes sharedBytesPerBlock = kib(32); //!< single-buffered footprint
    /** @} */

    /** @{ Per-tile dynamic instruction counts (whole block). */
    double memPerTile = 0.0;
    double fpPerTile = 0.0;
    double intPerTile = 0.0;
    double ctrlPerTile = 0.0;
    /** @} */

    /**
     * Warps per SM needed to saturate the SM's pipelines; fewer
     * resident warps scale execution time up proportionally
     * (vector_seq needs ~8; deeply dependent kernels more).
     */
    double warpsToSaturate = 8.0;

    /**
     * Restructuring overhead of this kernel's hand-written async
     * variant, multiplying compute time in async modes. Stencils
     * reload halos and re-index when double-buffered through
     * cp.async (the paper measures 2DCONV's async kernel at 2.46x
     * standard); streaming kernels keep 1.0.
     */
    double asyncComputePenalty = 1.0;

    /** Buffers this kernel touches. */
    std::vector<KernelBufferUse> buffers;

    /**
     * Declared ordering constraints: indices of kernels in the job's
     * kernel list that must complete before this one. Empty means
     * "after the previous kernel" (the implicit sequential chain).
     * The executor plays kernels in list order either way; the
     * declared DAG documents the true dataflow and is validated by
     * the static linter (cycles, dangling indices, launch order
     * consistent with the edges).
     */
    std::vector<std::size_t> dependsOn;

    /** Total bytes loaded from global memory per block. */
    Bytes
    loadBytesPerBlock() const
    {
        return tileLoadBytes * tilesPerBlock;
    }

    /** Total global load traffic of the whole grid. */
    Bytes
    totalLoadBytes() const
    {
        return loadBytesPerBlock() * gridBlocks;
    }
};

/**
 * Convenience builder: derive per-tile instruction counts from
 * per-element costs for the common "stream tiles, do k ops per
 * element" kernel shape.
 *
 * @param elementBytes    bytes per element (4 for float)
 * @param flopsPerElement fused arithmetic per element
 * @param intsPerElement  integer/address ops per element
 * @param ctrlPerElement  branches per element (loop overhead added)
 * @param storeRatio      stored bytes / loaded bytes
 */
KernelDescriptor
makeStreamKernel(std::string name, std::uint64_t gridBlocks,
                 std::uint32_t threadsPerBlock, Bytes totalLoadBytes,
                 Bytes sharedBytesPerBlock, Bytes elementBytes,
                 double flopsPerElement, double intsPerElement,
                 double ctrlPerElement, double storeRatio);

} // namespace uvmasync

#endif // UVMASYNC_GPU_KERNEL_DESCRIPTOR_HH
