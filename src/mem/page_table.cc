#include "mem/page_table.hh"

#include <utility>

#include "common/logging.hh"

namespace uvmasync
{

ManagedRange::ManagedRange(std::string name, Bytes bytes, Bytes chunkBytes)
    : name_(std::move(name)), bytes_(bytes), chunkBytes_(chunkBytes)
{
    UVMASYNC_ASSERT(bytes_ > 0, "%s: empty managed range", name_.c_str());
    UVMASYNC_ASSERT(chunkBytes_ > 0, "%s: zero chunk size", name_.c_str());
    ChunkIndex chunks = (bytes_ + chunkBytes_ - 1) / chunkBytes_;
    states_.assign(chunks, ChunkState::HostOnly);
    dirty_.assign(chunks, false);
}

Bytes
ManagedRange::chunkSize(ChunkIndex c) const
{
    UVMASYNC_ASSERT(c < chunkCount(), "%s: chunk %llu out of range",
                    name_.c_str(), static_cast<unsigned long long>(c));
    if (c + 1 == chunkCount()) {
        Bytes tail = bytes_ % chunkBytes_;
        return tail == 0 ? chunkBytes_ : tail;
    }
    return chunkBytes_;
}

ChunkState
ManagedRange::state(ChunkIndex c) const
{
    UVMASYNC_ASSERT(c < chunkCount(), "%s: chunk %llu out of range",
                    name_.c_str(), static_cast<unsigned long long>(c));
    return states_[c];
}

void
ManagedRange::setState(ChunkIndex c, ChunkState s)
{
    UVMASYNC_ASSERT(c < chunkCount(), "%s: chunk %llu out of range",
                    name_.c_str(), static_cast<unsigned long long>(c));
    states_[c] = s;
}

bool
ManagedRange::dirty(ChunkIndex c) const
{
    UVMASYNC_ASSERT(c < chunkCount(), "%s: chunk %llu out of range",
                    name_.c_str(), static_cast<unsigned long long>(c));
    return dirty_[c];
}

void
ManagedRange::setDirty(ChunkIndex c, bool d)
{
    UVMASYNC_ASSERT(c < chunkCount(), "%s: chunk %llu out of range",
                    name_.c_str(), static_cast<unsigned long long>(c));
    dirty_[c] = d;
}

ChunkIndex
ManagedRange::countInState(ChunkState s) const
{
    ChunkIndex n = 0;
    for (ChunkState st : states_) {
        if (st == s)
            ++n;
    }
    return n;
}

Bytes
ManagedRange::residentBytes() const
{
    Bytes total = 0;
    for (ChunkIndex c = 0; c < chunkCount(); ++c) {
        if (states_[c] == ChunkState::DeviceResident)
            total += chunkSize(c);
    }
    return total;
}

void
ManagedRange::reset()
{
    states_.assign(states_.size(), ChunkState::HostOnly);
    dirty_.assign(dirty_.size(), false);
}

PageTable::PageTable(std::string name) : SimObject(std::move(name)) {}

std::size_t
PageTable::addRange(std::string bufName, Bytes bytes, Bytes chunkBytes)
{
    ranges_.emplace_back(std::move(bufName), bytes, chunkBytes);
    return ranges_.size() - 1;
}

void
PageTable::clearRanges()
{
    ranges_.clear();
}

ManagedRange &
PageTable::range(std::size_t id)
{
    UVMASYNC_ASSERT(id < ranges_.size(), "range %zu out of bounds", id);
    return ranges_[id];
}

const ManagedRange &
PageTable::range(std::size_t id) const
{
    UVMASYNC_ASSERT(id < ranges_.size(), "range %zu out of bounds", id);
    return ranges_[id];
}

void
PageTable::recordMigration(bool toDevice, Bytes bytes)
{
    if (toDevice) {
        ++migToDev_;
        bytesToDev_ += bytes;
    } else {
        ++migToHost_;
        bytesToHost_ += bytes;
    }
}

void
PageTable::exportStats(StatMap &out) const
{
    putStat(out, "faults", static_cast<double>(faults_));
    putStat(out, "migrations_to_device", static_cast<double>(migToDev_));
    putStat(out, "migrations_to_host", static_cast<double>(migToHost_));
    putStat(out, "bytes_to_device", static_cast<double>(bytesToDev_));
    putStat(out, "bytes_to_host", static_cast<double>(bytesToHost_));
}

void
PageTable::resetStats()
{
    faults_ = 0;
    migToDev_ = 0;
    migToHost_ = 0;
    bytesToDev_ = 0;
    bytesToHost_ = 0;
}

} // namespace uvmasync
