/**
 * @file
 * A GPU-side TLB model.
 *
 * Under UVM the GPU keeps a mirror of host virtual mappings; TLB
 * misses trigger page walks whose latency contributes to the
 * "UVM without prefetch inflates kernel time ~2x" effect the paper
 * measures (Section 4.1.1).
 */

#ifndef UVMASYNC_MEM_TLB_HH
#define UVMASYNC_MEM_TLB_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "sim/sim_object.hh"

namespace uvmasync
{

/**
 * Fully associative LRU TLB over page numbers.
 */
class Tlb : public SimObject
{
  public:
    /**
     * @param name    stat name
     * @param entries capacity in mappings
     * @param pageBytes translation granularity
     */
    Tlb(std::string name, std::size_t entries, Bytes pageBytes);

    Bytes pageBytes() const { return pageBytes_; }
    std::size_t entries() const { return entries_; }

    /** Translate the page holding @p addr. @return true on TLB hit. */
    bool access(Addr addr);

    /** Drop all cached translations (e.g. after an unmap). */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Miss rate in [0, 1]; 0 without accesses. */
    double missRate() const;

    void exportStats(StatMap &out) const override;
    void resetStats() override;

  private:
    std::size_t entries_;
    Bytes pageBytes_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::unordered_map<PageNum, std::uint64_t> lastUse_;
};

} // namespace uvmasync

#endif // UVMASYNC_MEM_TLB_HH
