#include "mem/host_memory.hh"

#include <utility>

#include "common/logging.hh"
#include "inject/injector.hh"

namespace uvmasync
{

HostMemory::HostMemory(std::string name, HostMemoryConfig cfg)
    : SimObject(std::move(name)), cfg_(cfg)
{
    UVMASYNC_ASSERT(cfg_.dimmCount > 0 && cfg_.dimmCapacity > 0,
                    "%s: empty host memory", this->name().c_str());
    UVMASYNC_ASSERT(cfg_.straddlePenalty >= 1.0,
                    "%s: straddle penalty must be >= 1",
                    this->name().c_str());
}

bool
HostMemory::straddles(Bytes footprint) const
{
    double threshold = cfg_.straddleThreshold *
                       static_cast<double>(cfg_.dimmCapacity);
    return static_cast<double>(footprint) > threshold;
}

double
HostMemory::placementFactor(Bytes footprint, Rng &rng)
{
    ++sampledRuns_;
    if (!straddles(footprint))
        return 1.0;

    // How much of the buffer spills past a single module grows with
    // footprint; the spilled share transfers at a degraded rate
    // decided by the (random) placement for this run.
    double cap = static_cast<double>(cfg_.dimmCapacity);
    double spill = std::min(
        1.0, (static_cast<double>(footprint) -
              cfg_.straddleThreshold * cap) /
                 (cfg_.spillSpanFraction * cap));
    double unlucky = rng.uniform(1.0, cfg_.straddlePenalty);
    // Weighted harmonic combination: (1 - spill) of the data at full
    // rate, `spill` of it slowed by `unlucky`.
    double factor = 1.0 / ((1.0 - spill) + spill * unlucky);
    if (factor < 0.999)
        ++straddledRuns_;
    return factor;
}

double
HostMemory::transferPathFactor(Tick now)
{
    return inject_ ? inject_->hostSlowFactor(now) : 1.0;
}

void
HostMemory::exportStats(StatMap &out) const
{
    putStat(out, "straddled_runs", static_cast<double>(straddledRuns_));
    putStat(out, "sampled_runs", static_cast<double>(sampledRuns_));
}

void
HostMemory::resetStats()
{
    straddledRuns_ = 0;
    sampledRuns_ = 0;
}

} // namespace uvmasync
