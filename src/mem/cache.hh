/**
 * @file
 * A set-associative cache model with pluggable replacement.
 *
 * Used to simulate the A100's unified L1/texture cache under the five
 * data-transfer configurations (Figures 10 and 13 of the paper). The
 * kernel executor drives it with a sampled per-block access stream;
 * full-footprint simulation is unnecessary because miss behaviour is
 * periodic in the tile structure.
 */

#ifndef UVMASYNC_MEM_CACHE_HH
#define UVMASYNC_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/sim_object.hh"

namespace uvmasync
{

/** Replacement policy selection for SetAssocCache. */
enum class ReplacementPolicy
{
    Lru,
    Random,
};

/** Per-class hit/miss counters. */
struct CacheStats
{
    std::uint64_t loadHits = 0;
    std::uint64_t loadMisses = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;

    std::uint64_t loads() const { return loadHits + loadMisses; }
    std::uint64_t stores() const { return storeHits + storeMisses; }

    /** Load miss rate in [0, 1]; 0 when there were no loads. */
    double loadMissRate() const;

    /** Store miss rate in [0, 1]; 0 when there were no stores. */
    double storeMissRate() const;

    void reset() { *this = CacheStats{}; }
};

/**
 * Set-associative, write-allocate cache with selectable replacement.
 */
class SetAssocCache : public SimObject
{
  public:
    /**
     * @param name      stat name
     * @param capacity  total bytes (must be a multiple of line * ways)
     * @param lineBytes cache line size
     * @param ways      associativity
     * @param policy    replacement policy
     */
    SetAssocCache(std::string name, Bytes capacity, Bytes lineBytes,
                  unsigned ways, ReplacementPolicy policy =
                      ReplacementPolicy::Lru);

    Bytes capacity() const { return capacity_; }
    Bytes lineBytes() const { return lineBytes_; }
    unsigned ways() const { return ways_; }
    std::size_t sets() const { return sets_.size(); }

    /**
     * Perform one access. @return true on hit.
     * Misses allocate (write-allocate for stores).
     */
    bool access(Addr addr, bool isWrite);

    /**
     * A load that bypasses allocation on miss (models the async-copy
     * global->shared path, which does not stage data in L1 sectors
     * destined for the register file). Still probes for hits.
     */
    bool accessNoAllocate(Addr addr);

    /** Invalidate everything (keeps statistics). */
    void flush();

    const CacheStats &stats() const { return stats_; }

    void exportStats(StatMap &out) const override;
    void resetStats() override;

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    struct Set
    {
        std::vector<Line> lines;
    };

    /** Locate @p tag in @p set; returns way index or -1. */
    int findLine(const Set &set, Addr tag) const;

    /** Pick a victim way in @p set. */
    unsigned victimWay(Set &set);

    Bytes capacity_;
    Bytes lineBytes_;
    unsigned ways_;
    ReplacementPolicy policy_;
    std::vector<Set> sets_;
    CacheStats stats_;
    std::uint64_t useClock_ = 0;
    Rng rng_;
};

} // namespace uvmasync

#endif // UVMASYNC_MEM_CACHE_HH
