/**
 * @file
 * Buffer access-pattern taxonomy.
 *
 * The paper's central distinction is between "regular" workloads
 * (2DCONV, gemm, yolov3's gemm kernels) whose next touch a prefetcher
 * can predict, and "irregular" ones (lud, kmeans) where it cannot.
 * Each workload buffer carries an AccessPattern; the prefetcher, the
 * cache stream generator and the chunk-touch mapper all interpret it.
 */

#ifndef UVMASYNC_MEM_ACCESS_PATTERN_HH
#define UVMASYNC_MEM_ACCESS_PATTERN_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace uvmasync
{

/** How a kernel walks a buffer. */
enum class AccessPattern
{
    Sequential, //!< streaming, unit stride (vector_seq, saxpy)
    Strided,    //!< constant non-unit stride (column walks, 3DCONV)
    Tiled,      //!< blocked with heavy intra-tile reuse (gemm, 2DCONV)
    Random,     //!< uniform random (vector_rand)
    Irregular,  //!< data-dependent, partially local (lud, kmeans, nw)
    Broadcast,  //!< whole buffer read by every block (gemv's vector)
};

/** Every pattern, in declaration order. */
inline constexpr std::array<AccessPattern, 6> allAccessPatterns = {
    AccessPattern::Sequential, AccessPattern::Strided,
    AccessPattern::Tiled,      AccessPattern::Random,
    AccessPattern::Irregular,  AccessPattern::Broadcast,
};

/** Human-readable pattern name. */
const char *accessPatternName(AccessPattern p);

/** Parse a pattern name; returns false (out untouched) if unknown. */
bool parseAccessPattern(const std::string &name, AccessPattern &out);

/** Comma-separated list of all valid pattern names (error text). */
std::string accessPatternNames();

/**
 * Prefetch predictability of a pattern in [0, 1]: the probability
 * that a history-based prefetcher's next-chunk guess is useful.
 * Values reflect the qualitative ordering the paper relies on.
 */
double patternRegularity(AccessPattern p);

/**
 * Spatial locality in [0, 1]: fraction of consecutive accesses that
 * land in an already-touched cache line neighbourhood. Drives the
 * analytic miss estimator and the synthetic stream generator.
 */
double patternLocality(AccessPattern p);

/**
 * Memory-side bytes moved per payload byte when the pattern streams
 * through 32 B sectors without L1 filtering (the cp.async path):
 * sequential walks fetch each sector once (1.0); random 4 B gathers
 * fetch a whole sector per element (8.0).
 */
double patternSectorTraffic(AccessPattern p);

/**
 * Generates a synthetic address stream with the statistics of a
 * pattern; the kernel executor feeds it through SetAssocCache to
 * measure per-configuration L1 miss rates (Figures 10 and 13).
 */
class StreamGenerator
{
  public:
    /**
     * @param pattern     buffer walk shape
     * @param footprint   bytes spanned by the walk
     * @param elementBytes access granularity
     * @param seed        RNG seed (deterministic streams)
     */
    StreamGenerator(AccessPattern pattern, Bytes footprint,
                    Bytes elementBytes, std::uint64_t seed);

    /** Next element address in the stream. */
    Addr next();

    /** Generate @p n addresses at once. */
    std::vector<Addr> generate(std::size_t n);

    AccessPattern pattern() const { return pattern_; }

  private:
    AccessPattern pattern_;
    Bytes footprint_;
    Bytes elementBytes_;
    std::uint64_t numElements_;
    Rng rng_;
    std::uint64_t cursor_ = 0;
    std::uint64_t tileBase_ = 0;
    std::uint64_t tileCursor_ = 0;

    static constexpr std::uint64_t tileElements_ = 1024;
    static constexpr std::uint64_t strideElements_ = 16;
};

} // namespace uvmasync

#endif // UVMASYNC_MEM_ACCESS_PATTERN_HH
