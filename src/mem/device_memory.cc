#include "mem/device_memory.hh"

#include <algorithm>

#include "common/logging.hh"

namespace uvmasync
{

DeviceMemory::DeviceMemory(std::string name, Bytes capacity,
                           Bandwidth bandwidth)
    : SimObject(std::move(name)), capacity_(capacity),
      bandwidth_(bandwidth)
{
    UVMASYNC_ASSERT(capacity_ > 0, "%s: zero capacity",
                    this->name().c_str());
    UVMASYNC_ASSERT(bandwidth_.valid(), "%s: zero bandwidth",
                    this->name().c_str());
}

void
DeviceMemory::setLruTracking(bool enabled)
{
    trackLru_ = enabled;
    if (!enabled)
        lru_.clear();
}

void
DeviceMemory::insert(ResidentChunk chunk)
{
    UVMASYNC_ASSERT(fits(chunk.bytes),
                    "%s: inserting %llu bytes would oversubscribe "
                    "(resident %llu / %llu)",
                    name().c_str(),
                    static_cast<unsigned long long>(chunk.bytes),
                    static_cast<unsigned long long>(residentBytes_),
                    static_cast<unsigned long long>(capacity_));
    residentBytes_ += chunk.bytes;
    if (trackLru_)
        lru_.push_back(chunk);
}

void
DeviceMemory::touch(std::size_t rangeId, std::uint64_t chunkIndex)
{
    if (!trackLru_)
        return;
    auto it = std::find_if(lru_.begin(), lru_.end(),
                           [&](const ResidentChunk &c) {
                               return c.rangeId == rangeId &&
                                      c.chunkIndex == chunkIndex;
                           });
    if (it == lru_.end())
        return;
    ResidentChunk chunk = *it;
    lru_.erase(it);
    lru_.push_back(chunk);
}

ResidentChunk
DeviceMemory::evictVictim()
{
    UVMASYNC_ASSERT(trackLru_, "%s: eviction requires LRU tracking",
                    name().c_str());
    UVMASYNC_ASSERT(!lru_.empty(), "%s: eviction with nothing resident",
                    name().c_str());
    ResidentChunk victim = lru_.front();
    lru_.pop_front();
    UVMASYNC_ASSERT(residentBytes_ >= victim.bytes,
                    "%s: resident byte accounting underflow",
                    name().c_str());
    residentBytes_ -= victim.bytes;
    ++evictions_;
    evictedBytes_ += victim.bytes;
    return victim;
}

void
DeviceMemory::clear()
{
    lru_.clear();
    residentBytes_ = 0;
}

void
DeviceMemory::exportStats(StatMap &out) const
{
    putStat(out, "resident_bytes", static_cast<double>(residentBytes_));
    putStat(out, "evictions", static_cast<double>(evictions_));
    putStat(out, "evicted_bytes", static_cast<double>(evictedBytes_));
}

void
DeviceMemory::resetStats()
{
    evictions_ = 0;
    evictedBytes_ = 0;
}

} // namespace uvmasync
