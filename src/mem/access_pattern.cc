#include "mem/access_pattern.hh"

#include "common/logging.hh"

namespace uvmasync
{

const char *
accessPatternName(AccessPattern p)
{
    switch (p) {
      case AccessPattern::Sequential: return "sequential";
      case AccessPattern::Strided: return "strided";
      case AccessPattern::Tiled: return "tiled";
      case AccessPattern::Random: return "random";
      case AccessPattern::Irregular: return "irregular";
      case AccessPattern::Broadcast: return "broadcast";
    }
    panic("unknown access pattern %d", static_cast<int>(p));
}

bool
parseAccessPattern(const std::string &name, AccessPattern &out)
{
    for (AccessPattern p : allAccessPatterns) {
        if (name == accessPatternName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

std::string
accessPatternNames()
{
    std::string out;
    for (AccessPattern p : allAccessPatterns) {
        if (!out.empty())
            out += ", ";
        out += accessPatternName(p);
    }
    return out;
}

double
patternRegularity(AccessPattern p)
{
    switch (p) {
      case AccessPattern::Sequential: return 0.97;
      case AccessPattern::Strided: return 0.90;
      case AccessPattern::Tiled: return 0.92;
      case AccessPattern::Broadcast: return 0.95;
      case AccessPattern::Random: return 0.08;
      case AccessPattern::Irregular: return 0.25;
    }
    panic("unknown access pattern %d", static_cast<int>(p));
}

double
patternLocality(AccessPattern p)
{
    switch (p) {
      case AccessPattern::Sequential: return 0.95;
      case AccessPattern::Strided: return 0.45;
      case AccessPattern::Tiled: return 0.85;
      case AccessPattern::Broadcast: return 0.90;
      case AccessPattern::Random: return 0.02;
      case AccessPattern::Irregular: return 0.30;
    }
    panic("unknown access pattern %d", static_cast<int>(p));
}

double
patternSectorTraffic(AccessPattern p)
{
    switch (p) {
      case AccessPattern::Sequential: return 1.0;
      case AccessPattern::Strided: return 4.0;
      case AccessPattern::Tiled: return 0.9;
      case AccessPattern::Broadcast: return 0.95;
      case AccessPattern::Random: return 8.0;
      case AccessPattern::Irregular: return 3.0;
    }
    panic("unknown access pattern %d", static_cast<int>(p));
}

StreamGenerator::StreamGenerator(AccessPattern pattern, Bytes footprint,
                                 Bytes elementBytes, std::uint64_t seed)
    : pattern_(pattern), footprint_(footprint),
      elementBytes_(elementBytes), rng_(seed)
{
    // Caller-supplied geometry: report it as a configuration error
    // with the constraint spelled out instead of asserting.
    if (elementBytes_ == 0 || footprint_ < elementBytes_)
        fatal("access stream over '%s': footprint (%llu B) must be "
              ">= element size (%llu B) and the element size >= 1",
              accessPatternName(pattern_),
              static_cast<unsigned long long>(footprint_),
              static_cast<unsigned long long>(elementBytes_));
    numElements_ = footprint_ / elementBytes_;
}

Addr
StreamGenerator::next()
{
    std::uint64_t element = 0;
    switch (pattern_) {
      case AccessPattern::Sequential:
      case AccessPattern::Broadcast:
        element = cursor_++ % numElements_;
        break;
      case AccessPattern::Strided:
        element = (cursor_ * strideElements_) % numElements_ +
                  (cursor_ * strideElements_ / numElements_) %
                      strideElements_;
        element %= numElements_;
        ++cursor_;
        break;
      case AccessPattern::Tiled: {
        // Walk a tile several times before moving to the next tile.
        constexpr std::uint64_t reuse = 4;
        std::uint64_t tile_span = std::min(tileElements_, numElements_);
        element = (tileBase_ + tileCursor_ % tile_span) % numElements_;
        ++tileCursor_;
        if (tileCursor_ >= tile_span * reuse) {
            tileCursor_ = 0;
            tileBase_ = (tileBase_ + tile_span) % numElements_;
        }
        break;
      }
      case AccessPattern::Random:
        element = rng_.uniformInt(numElements_);
        break;
      case AccessPattern::Irregular: {
        // Mostly-local walk with occasional long jumps: models
        // pointer-chasing / data-dependent indexing with some reuse.
        if (rng_.chance(0.70)) {
            element = (cursor_ + rng_.uniformInt(8)) % numElements_;
            ++cursor_;
        } else {
            cursor_ = rng_.uniformInt(numElements_);
            element = cursor_;
        }
        break;
      }
    }
    return element * elementBytes_;
}

std::vector<Addr>
StreamGenerator::generate(std::size_t n)
{
    std::vector<Addr> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(next());
    return out;
}

} // namespace uvmasync
