#include "mem/tlb.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace uvmasync
{

Tlb::Tlb(std::string name, std::size_t entries, Bytes pageBytes)
    : SimObject(std::move(name)), entries_(entries), pageBytes_(pageBytes)
{
    UVMASYNC_ASSERT(entries_ > 0, "%s: zero entries",
                    this->name().c_str());
    UVMASYNC_ASSERT(pageBytes_ > 0, "%s: zero page size",
                    this->name().c_str());
}

bool
Tlb::access(Addr addr)
{
    PageNum page = addr / pageBytes_;
    ++clock_;
    auto it = lastUse_.find(page);
    if (it != lastUse_.end()) {
        it->second = clock_;
        ++hits_;
        return true;
    }

    ++misses_;
    if (lastUse_.size() >= entries_) {
        // Evict the least recently used mapping.
        auto victim = std::min_element(
            lastUse_.begin(), lastUse_.end(),
            [](const auto &a, const auto &b) {
                return a.second < b.second;
            });
        lastUse_.erase(victim);
    }
    lastUse_.emplace(page, clock_);
    return false;
}

void
Tlb::flush()
{
    lastUse_.clear();
}

double
Tlb::missRate() const
{
    std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(misses_) /
                   static_cast<double>(total)
                 : 0.0;
}

void
Tlb::exportStats(StatMap &out) const
{
    putStat(out, "hits", static_cast<double>(hits_));
    putStat(out, "misses", static_cast<double>(misses_));
    putStat(out, "miss_rate", missRate());
}

void
Tlb::resetStats()
{
    hits_ = 0;
    misses_ = 0;
}

} // namespace uvmasync
