/**
 * @file
 * Host DRAM model.
 *
 * Captures the effect the paper root-causes in Figure 6: once a
 * buffer's footprint approaches the capacity of a single DRAM module,
 * part of the data lands on another module with a different effective
 * path to the PCIe root, making host-side transfer bandwidth a random
 * variable across runs. Below that regime bandwidth is stable.
 */

#ifndef UVMASYNC_MEM_HOST_MEMORY_HH
#define UVMASYNC_MEM_HOST_MEMORY_HH

#include <string>

#include "common/rng.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "sim/sim_object.hh"

namespace uvmasync
{

class Injector;

/** Configuration of the host memory system (Table 1's 16x 64 GB). */
struct HostMemoryConfig
{
    std::size_t dimmCount = 16;
    Bytes dimmCapacity = gib(64);
    Bandwidth readBandwidth = Bandwidth::fromGBps(190.0);

    /**
     * Fraction of single-module capacity above which a buffer is
     * likely to straddle modules (the Mega effect in Fig. 6).
     */
    double straddleThreshold = 0.45;

    /**
     * Worst-case slowdown of the host-side transfer path when the
     * placement is unlucky; the per-run factor is drawn uniformly in
     * [1, straddlePenalty].
     */
    double straddlePenalty = 3.0;

    /**
     * Footprint span (as a fraction of module capacity) over which
     * the spilled share ramps from 0 to 1 once past the threshold.
     */
    double spillSpanFraction = 0.15;
};

/**
 * Host DRAM: capacity accounting plus the placement-noise model.
 */
class HostMemory : public SimObject
{
  public:
    HostMemory(std::string name, HostMemoryConfig cfg);

    const HostMemoryConfig &config() const { return cfg_; }

    Bytes totalCapacity() const
    {
        return cfg_.dimmCount * cfg_.dimmCapacity;
    }

    /**
     * Whether a buffer of @p footprint bytes risks straddling DRAM
     * modules (per-allocation, the dominant buffer decides).
     */
    bool straddles(Bytes footprint) const;

    /**
     * Per-run host-path bandwidth multiplier in (0, 1]. Draws from
     * @p rng; deterministic given the run's seed. Returns 1.0 when
     * the footprint is comfortably within one module.
     */
    double placementFactor(Bytes footprint, Rng &rng);

    std::uint64_t straddledRuns() const { return straddledRuns_; }
    std::uint64_t sampledRuns() const { return sampledRuns_; }

    /**
     * Attach the fault injector (null detaches): transfers issued
     * inside an injected slow-page window may hit a degraded DIMM.
     */
    void setInjector(Injector *inject) { inject_ = inject; }

    /**
     * Per-transfer host-path multiplier in (0, 1] at @p now — the
     * transient (slow-page) counterpart of the per-run
     * placementFactor(). 1.0 whenever no injector is attached, so
     * the clean path is untouched.
     */
    double transferPathFactor(Tick now);

    void exportStats(StatMap &out) const override;
    void resetStats() override;

  private:
    HostMemoryConfig cfg_;
    std::uint64_t straddledRuns_ = 0;
    std::uint64_t sampledRuns_ = 0;
    Injector *inject_ = nullptr;
};

} // namespace uvmasync

#endif // UVMASYNC_MEM_HOST_MEMORY_HH
