#include "mem/cache.hh"

#include <utility>

#include "common/logging.hh"

namespace uvmasync
{

double
CacheStats::loadMissRate() const
{
    std::uint64_t total = loads();
    return total ? static_cast<double>(loadMisses) /
                   static_cast<double>(total)
                 : 0.0;
}

double
CacheStats::storeMissRate() const
{
    std::uint64_t total = stores();
    return total ? static_cast<double>(storeMisses) /
                   static_cast<double>(total)
                 : 0.0;
}

SetAssocCache::SetAssocCache(std::string name, Bytes capacity,
                             Bytes lineBytes, unsigned ways,
                             ReplacementPolicy policy)
    : SimObject(std::move(name)), capacity_(capacity),
      lineBytes_(lineBytes), ways_(ways), policy_(policy),
      rng_(0xcafef00dull)
{
    UVMASYNC_ASSERT(lineBytes_ > 0 && ways_ > 0,
                    "%s: bad geometry", this->name().c_str());
    UVMASYNC_ASSERT(capacity_ % (lineBytes_ * ways_) == 0,
                    "%s: capacity %llu not divisible by line*ways",
                    this->name().c_str(),
                    static_cast<unsigned long long>(capacity_));
    std::size_t num_sets = capacity_ / (lineBytes_ * ways_);
    UVMASYNC_ASSERT(num_sets > 0, "%s: zero sets", this->name().c_str());
    sets_.resize(num_sets);
    for (auto &set : sets_)
        set.lines.resize(ways_);
}

int
SetAssocCache::findLine(const Set &set, Addr tag) const
{
    for (unsigned w = 0; w < ways_; ++w) {
        if (set.lines[w].valid && set.lines[w].tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

unsigned
SetAssocCache::victimWay(Set &set)
{
    // Prefer an invalid way.
    for (unsigned w = 0; w < ways_; ++w) {
        if (!set.lines[w].valid)
            return w;
    }
    if (policy_ == ReplacementPolicy::Random)
        return static_cast<unsigned>(rng_.uniformInt(
            static_cast<std::uint64_t>(ways_)));
    unsigned victim = 0;
    for (unsigned w = 1; w < ways_; ++w) {
        if (set.lines[w].lastUse < set.lines[victim].lastUse)
            victim = w;
    }
    return victim;
}

bool
SetAssocCache::access(Addr addr, bool isWrite)
{
    Addr line_addr = addr / lineBytes_;
    std::size_t set_idx = line_addr % sets_.size();
    Addr tag = line_addr / sets_.size();
    Set &set = sets_[set_idx];
    ++useClock_;

    int way = findLine(set, tag);
    if (way >= 0) {
        set.lines[static_cast<unsigned>(way)].lastUse = useClock_;
        if (isWrite)
            ++stats_.storeHits;
        else
            ++stats_.loadHits;
        return true;
    }

    if (isWrite)
        ++stats_.storeMisses;
    else
        ++stats_.loadMisses;

    unsigned victim = victimWay(set);
    set.lines[victim] = Line{true, tag, useClock_};
    return false;
}

bool
SetAssocCache::accessNoAllocate(Addr addr)
{
    Addr line_addr = addr / lineBytes_;
    std::size_t set_idx = line_addr % sets_.size();
    Addr tag = line_addr / sets_.size();
    Set &set = sets_[set_idx];
    ++useClock_;

    int way = findLine(set, tag);
    if (way >= 0) {
        set.lines[static_cast<unsigned>(way)].lastUse = useClock_;
        ++stats_.loadHits;
        return true;
    }
    ++stats_.loadMisses;
    return false;
}

void
SetAssocCache::flush()
{
    for (auto &set : sets_) {
        for (auto &line : set.lines)
            line = Line{};
    }
}

void
SetAssocCache::exportStats(StatMap &out) const
{
    putStat(out, "load_hits", static_cast<double>(stats_.loadHits));
    putStat(out, "load_misses", static_cast<double>(stats_.loadMisses));
    putStat(out, "store_hits", static_cast<double>(stats_.storeHits));
    putStat(out, "store_misses", static_cast<double>(stats_.storeMisses));
    putStat(out, "load_miss_rate", stats_.loadMissRate());
    putStat(out, "store_miss_rate", stats_.storeMissRate());
}

void
SetAssocCache::resetStats()
{
    stats_.reset();
}

} // namespace uvmasync
