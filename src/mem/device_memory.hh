/**
 * @file
 * GPU global-memory (HBM) model: capacity accounting, bandwidth, and
 * LRU chunk eviction when managed allocations oversubscribe it.
 */

#ifndef UVMASYNC_MEM_DEVICE_MEMORY_HH
#define UVMASYNC_MEM_DEVICE_MEMORY_HH

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "common/types.hh"
#include "common/units.hh"
#include "sim/sim_object.hh"

namespace uvmasync
{

/** Identifies a resident chunk: (managed range id, chunk index). */
struct ResidentChunk
{
    std::size_t rangeId;
    std::uint64_t chunkIndex;
    Bytes bytes;
};

/**
 * Device HBM: tracks resident bytes, answers "must I evict?" queries
 * and maintains an LRU order over resident chunks for
 * oversubscription studies.
 */
class DeviceMemory : public SimObject
{
  public:
    /**
     * @param name      stat name
     * @param capacity  usable HBM bytes
     * @param bandwidth sustained HBM bandwidth
     */
    DeviceMemory(std::string name, Bytes capacity, Bandwidth bandwidth);

    Bytes capacity() const { return capacity_; }
    Bandwidth bandwidth() const { return bandwidth_; }
    Bytes residentBytes() const { return residentBytes_; }
    Bytes freeBytes() const { return capacity_ - residentBytes_; }

    /** True if @p bytes more would fit without eviction. */
    bool fits(Bytes bytes) const { return residentBytes_ + bytes <= capacity_; }

    /**
     * Enable/disable precise LRU bookkeeping. When the working set
     * cannot oversubscribe the device, eviction never happens and the
     * per-access touch() bookkeeping is wasted work; callers disable
     * it for such jobs. Disabling clears the LRU list.
     */
    void setLruTracking(bool enabled);

    bool lruTracking() const { return trackLru_; }

    /**
     * Note a chunk arriving on the device (appends to LRU tail).
     * Call evictVictim() first until fits() holds.
     */
    void insert(ResidentChunk chunk);

    /** Refresh a chunk's LRU position on access. */
    void touch(std::size_t rangeId, std::uint64_t chunkIndex);

    /**
     * Pop the least-recently-used resident chunk for eviction;
     * crashes if nothing is resident.
     */
    ResidentChunk evictVictim();

    /** Forget all residency (free / reset). */
    void clear();

    std::uint64_t evictions() const { return evictions_; }
    Bytes evictedBytes() const { return evictedBytes_; }

    void exportStats(StatMap &out) const override;
    void resetStats() override;

  private:
    Bytes capacity_;
    Bandwidth bandwidth_;
    bool trackLru_ = true;
    Bytes residentBytes_ = 0;
    std::deque<ResidentChunk> lru_;
    std::uint64_t evictions_ = 0;
    Bytes evictedBytes_ = 0;
};

} // namespace uvmasync

#endif // UVMASYNC_MEM_DEVICE_MEMORY_HH
