/**
 * @file
 * Residency tracking for managed (UVM) allocations.
 *
 * UVM migrates data between host and device at a driver-chosen
 * granularity (64 KiB basic blocks on real hardware); the simulator
 * calls that unit a "chunk". A ManagedRange tracks per-chunk residency
 * and dirtiness for one allocation; the PageTable owns all ranges of a
 * device and accumulates fault statistics.
 */

#ifndef UVMASYNC_MEM_PAGE_TABLE_HH
#define UVMASYNC_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/sim_object.hh"

namespace uvmasync
{

/** Residency state of one migration chunk. */
enum class ChunkState : std::uint8_t
{
    HostOnly,       //!< only the host copy is valid
    MigratingToDev, //!< transfer in flight towards the device
    DeviceResident, //!< device copy valid
    MigratingToHost,//!< transfer in flight towards the host
};

/** Identifies a chunk inside a managed range. */
using ChunkIndex = std::uint64_t;

/**
 * Per-allocation chunk residency map.
 */
class ManagedRange
{
  public:
    /**
     * @param name       buffer name for reports
     * @param bytes      allocation size
     * @param chunkBytes migration granularity
     */
    ManagedRange(std::string name, Bytes bytes, Bytes chunkBytes);

    const std::string &name() const { return name_; }
    Bytes bytes() const { return bytes_; }
    Bytes chunkBytes() const { return chunkBytes_; }
    ChunkIndex chunkCount() const { return states_.size(); }

    /** Bytes covered by chunk @p c (the last chunk may be partial). */
    Bytes chunkSize(ChunkIndex c) const;

    ChunkState state(ChunkIndex c) const;
    void setState(ChunkIndex c, ChunkState s);

    bool dirty(ChunkIndex c) const;
    void setDirty(ChunkIndex c, bool d);

    /** Number of chunks currently in the given state. */
    ChunkIndex countInState(ChunkState s) const;

    /** Device-resident bytes right now. */
    Bytes residentBytes() const;

    /** Reset every chunk to HostOnly / clean. */
    void reset();

  private:
    std::string name_;
    Bytes bytes_;
    Bytes chunkBytes_;
    std::vector<ChunkState> states_;
    std::vector<bool> dirty_;
};

/**
 * Device-wide residency directory plus fault accounting.
 */
class PageTable : public SimObject
{
  public:
    explicit PageTable(std::string name);

    /** Register a managed allocation; returns its range id. */
    std::size_t addRange(std::string bufName, Bytes bytes,
                         Bytes chunkBytes);

    /** Drop all ranges (allocation freed / experiment reset). */
    void clearRanges();

    std::size_t rangeCount() const { return ranges_.size(); }
    ManagedRange &range(std::size_t id);
    const ManagedRange &range(std::size_t id) const;

    /** Count a GPU far fault (non-resident access). */
    void recordFault() { ++faults_; }

    /** Count a chunk migration in the given direction. */
    void recordMigration(bool toDevice, Bytes bytes);

    std::uint64_t faults() const { return faults_; }
    std::uint64_t migrationsToDevice() const { return migToDev_; }
    std::uint64_t migrationsToHost() const { return migToHost_; }
    Bytes bytesToDevice() const { return bytesToDev_; }
    Bytes bytesToHost() const { return bytesToHost_; }

    void exportStats(StatMap &out) const override;
    void resetStats() override;

  private:
    std::vector<ManagedRange> ranges_;
    std::uint64_t faults_ = 0;
    std::uint64_t migToDev_ = 0;
    std::uint64_t migToHost_ = 0;
    Bytes bytesToDev_ = 0;
    Bytes bytesToHost_ = 0;
};

} // namespace uvmasync

#endif // UVMASYNC_MEM_PAGE_TABLE_HH
