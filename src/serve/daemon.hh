/**
 * @file
 * The campaign daemon: a long-lived, single-process simulation
 * service over the existing batch machinery.
 *
 * Clients submit experiment batches (serve/batch_spec.hh payloads)
 * and get back an opaque BatchHandle; the daemon admits batches
 * through a per-client fair queue (serve/admission.hh), runs them
 * one at a time on the ParallelRunner (points within a batch still
 * fan out across --jobs workers), and exposes polling, submission-
 * order result streaming, and cancellation — the Mooncake Transfer
 * Engine's submit/poll idiom (submitTransfer → getTransferStatus)
 * applied to simulation campaigns.
 *
 * Durability and caching are composition, not new machinery:
 *
 *  - every admitted batch owns a RunJournal under the state
 *    directory, so a daemon kill at ANY point resumes every
 *    in-flight campaign on restart, and the journal's record lines
 *    ARE the client-visible result stream (byte-identical to what
 *    `uvmasync run --journal` writes for the same batch);
 *  - one shared ResultStore serves as the cross-client cache — a
 *    batch one tenant already paid for is a pure replay for the
 *    next tenant;
 *  - the retry/quarantine RunPolicy isolates a poisoned point to
 *    its own batch (degraded, not wedged), never to the daemon.
 *
 * State directory layout:
 *
 *   <state>/batches/<handle16>.kv         submission payload, fsync'd
 *   <state>/batches/<handle16>.jsonl      the batch's run journal
 *   <state>/batches/<handle16>.cancelled  cancellation marker
 *
 * Handles are persisted sequence numbers (hexU64-rendered on the
 * wire); recovery scans the payloads in handle order, classifies
 * each batch by its journal (absent/partial → pending again,
 * complete → done/degraded, marker → cancelled), and re-admits
 * unfinished work before the first client connects.
 *
 * No wall-clock anywhere: scheduling is queue order, recovery order
 * is handle order, and the result stream is the journal bytes —
 * determinism_lint.sh enforces the ban for src/serve like it does
 * for src/journal and src/store.
 */

#ifndef UVMASYNC_SERVE_DAEMON_HH
#define UVMASYNC_SERVE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_runner.hh"
#include "io/io_env.hh"
#include "serve/admission.hh"
#include "serve/batch_spec.hh"
#include "store/result_store.hh"

namespace uvmasync
{

/** Daemon configuration. */
struct ServeOptions
{
    /** Root of the batch payloads + journals (required). */
    std::string stateDir;

    /** Worker threads per batch; 0 = globalJobs(). */
    unsigned jobs = 0;

    /** Shared cross-client ResultStore directory; "" = no store. */
    std::string storeDir;

    /** Store byte budget (0 = unlimited); see StoreOptions. */
    std::uint64_t storeMaxBytes = 0;

    /** Testbed configuration every batch runs against. */
    SystemConfig system = SystemConfig::a100Epyc();

    /**
     * Start with the scheduler gate closed: batches are admitted
     * but none runs until resume() (tests use this to pin
     * pending-state behavior, e.g. cancel-before-run).
     */
    bool paused = false;

    /**
     * File-system seam for every durable-state byte the daemon
     * writes (payloads, journals, markers, the shared store); null
     * means realIoEnv(). Fault-injection tests point this at a
     * FaultyIoEnv to fail any single operation.
     */
    IoEnv *io = nullptr;
};

/** Lifecycle of one batch. */
enum class BatchState
{
    Pending,   //!< admitted, waiting in the fair queue
    Running,   //!< on the ParallelRunner right now
    Done,      //!< every point ok
    Degraded,  //!< finished with quarantined points
    Cancelled, //!< cancelled (before or during execution)
};

/** Stable state slug ("pending", "running", ...). */
const char *batchStateName(BatchState state);

/** True for states no transition can leave. */
bool batchStateTerminal(BatchState state);

/** Parse a state slug; returns true on success. */
bool parseBatchState(const std::string &text, BatchState &out);

/** One getBatchStatus() snapshot. */
struct BatchStatus
{
    BatchState state = BatchState::Pending;
    std::size_t points = 0;   //!< grid size of the batch
    std::size_t merged = 0;   //!< outcomes merged so far
    std::size_t ok = 0;       //!< merged with a result
    std::size_t failed = 0;   //!< merged without one
    std::size_t restored = 0; //!< replayed from the batch journal
    std::size_t cached = 0;   //!< served by the shared store

    /** Per-point slugs: "pending" until merged, then the terminal
     *  pointStatusName ("ok", "quarantined", ...). */
    std::vector<std::string> pointStatus;
};

/** One streamResults() chunk. */
struct StreamChunk
{
    /** Journal record lines ('\n'-terminated, submission order). */
    std::string lines;

    /** Records contained in @p lines. */
    std::size_t records = 0;

    /** Next record index to request. */
    std::size_t nextRecord = 0;

    /** Batch reached a terminal state; no more records will come. */
    bool terminal = false;

    BatchState state = BatchState::Pending;
};

/** Daemon-wide counters (the Stats reply). */
struct ServeStats
{
    std::uint64_t batchesSubmitted = 0;  //!< this process lifetime
    std::uint64_t batchesRecovered = 0;  //!< found at startup
    std::uint64_t batchesCompleted = 0;  //!< reached done/degraded
    std::uint64_t batchesDegraded = 0;
    std::uint64_t batchesCancelled = 0;
    std::uint64_t pointsMerged = 0;
    std::uint64_t pointsRestored = 0;
    std::uint64_t pointsCached = 0;
    std::uint64_t storeLookups = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t storeStored = 0;

    /**
     * Durable-state writes that failed and degraded (never killed)
     * their batch: journal commits the journal refused, cancel
     * markers that did not persist, store segment appends declined.
     * Each one also produces a warn() with the errno text.
     */
    std::uint64_t ioErrors = 0;
};

/**
 * Validate + create the daemon state directory (root and batches/
 * subdirectory, plus a write probe). fatal() with an actionable
 * message when the path is not writable — called from the ServeDaemon
 * constructor so a misconfigured daemon dies at startup, never on a
 * client's first submit (the preflight discipline of --out/--trace/
 * --journal).
 */
void preflightServeStateDir(const std::string &stateDir,
                            IoEnv &io = realIoEnv());

/**
 * The daemon. Construction preflights the state directory, opens the
 * shared store, recovers every persisted batch, and starts the
 * scheduler thread; destruction (or stop()) drains the in-flight
 * batch and joins. All public methods are thread-safe — the socket
 * server calls them from its poll loop while the scheduler runs.
 */
class ServeDaemon
{
  public:
    explicit ServeDaemon(const ServeOptions &opt);
    ~ServeDaemon();

    ServeDaemon(const ServeDaemon &) = delete;
    ServeDaemon &operator=(const ServeDaemon &) = delete;

    /**
     * Admit one batch for @p client. Returns 0 with @p error set on
     * a rejected submission (malformed KV, unknown workload/size/
     * mode, unwritable payload) — the daemon itself never fails.
     */
    BatchHandle submit(std::uint64_t client, const std::string &payload,
                       std::string &error);

    /** Poll one batch; false + error on an unknown handle. */
    bool status(BatchHandle handle, BatchStatus &out,
                std::string &error) const;

    /**
     * Read the batch's result stream from record @p fromRecord on:
     * whatever complete journal record lines exist right now. The
     * journal is fsync'd before a point's merge callback fires, so a
     * line once visible never changes — clients may chunk at any
     * pace, across daemon restarts, and concatenated chunks are
     * byte-identical to the batch CLI's journal records.
     */
    bool stream(BatchHandle handle, std::size_t fromRecord,
                StreamChunk &out, std::string &error) const;

    /**
     * Cancel: a pending batch leaves the queue and never runs; a
     * running batch stops issuing new points (in-flight points
     * finish; the partial journal survives as a durable prefix); a
     * terminal batch is untouched. Returns the resulting state.
     */
    bool cancel(BatchHandle handle, BatchState &result,
                std::string &error);

    ServeStats stats() const;

    /** Handles of every known batch, ascending. */
    std::vector<BatchHandle> handles() const;

    /** Block until @p handle is terminal; false on unknown handle. */
    bool waitTerminal(BatchHandle handle, BatchState &result);

    /** Open the scheduler gate (after ServeOptions::paused). */
    void resume();

    /** Stop accepting scheduler work and join (idempotent). */
    void stop();

    /**
     * Hook invoked (from scheduler/worker threads, possibly under
     * internal locks — keep it async-signal-cheap) whenever a point
     * merges or a batch changes state; the socket server points this
     * at its self-pipe to wake poll().
     */
    void setWakeup(std::function<void()> wakeup);

    const ServeOptions &options() const { return opt_; }

  private:
    struct Batch
    {
        BatchHandle handle = 0;
        BatchSpec spec;
        std::vector<ExperimentPoint> points;
        BatchState state = BatchState::Pending;
        std::atomic<bool> cancelFlag{false};

        std::size_t merged = 0;
        std::size_t ok = 0;
        std::size_t failed = 0;
        std::size_t restored = 0;
        std::size_t cached = 0;

        /** Terminal status of merged points (size = merged). */
        std::vector<PointStatus> statuses;

        /** Rejected at recovery (payload no longer parses). */
        std::string recoveryError;

        /**
         * First durable-state write failure this batch saw (errno
         * text); set alongside BatchState::Degraded so a poll can
         * distinguish "points failed" from "disk failed".
         */
        std::string ioError;
    };

    std::string payloadPath(BatchHandle handle) const;
    std::string journalPath(BatchHandle handle) const;
    std::string markerPath(BatchHandle handle) const;

    void recover();
    void schedulerLoop();
    void runBatch(Batch &batch);
    void finishBatch(Batch &batch, BatchState state);
    void notifyWakeup();

    ServeOptions opt_;
    IoEnv &io_; //!< opt_.io or realIoEnv(); all durable I/O
    std::string batchesDir_;

    mutable std::mutex mutex_; //!< batches_, queue_, stats_, state
    std::condition_variable cv_;
    std::map<BatchHandle, std::unique_ptr<Batch>> batches_;
    AdmissionQueue queue_;
    BatchHandle nextHandle_ = 1;
    ServeStats stats_;
    bool paused_ = false;
    bool stopping_ = false;

    /** Store I/O serialization: worker merges vs. stats polls. */
    mutable std::mutex storeMutex_;
    std::unique_ptr<ResultStore> store_;

    std::function<void()> wakeup_;
    mutable std::mutex wakeupMutex_;

    std::thread scheduler_;
};

} // namespace uvmasync

#endif // UVMASYNC_SERVE_DAEMON_HH
