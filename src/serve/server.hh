/**
 * @file
 * AF_UNIX front end of the campaign daemon, plus the blocking client
 * the CLI and tests use.
 *
 * The server is a single poll() loop: one listening socket, one
 * self-pipe the daemon's wakeup hook writes to, and one FrameReader
 * per connection. Requests are handled synchronously against the
 * (internally thread-safe) ServeDaemon. Accepted sockets are
 * nonblocking; replies queue in a per-connection outbound buffer
 * that drains on POLLOUT, so a peer that stops reading can never
 * stall the loop — it accumulates buffered bytes up to a ceiling
 * and is then dropped, only ever hurting itself.
 *
 * Result streaming is subscription-based: a Stream request with
 * wait=1 parks the connection; every merge wakes the poll loop
 * through the self-pipe, which drains newly durable journal records
 * to every subscriber, and a terminal batch closes the stream with
 * StreamEnd. No wall-clock anywhere — poll() blocks with an infinite
 * timeout and only file descriptors wake it.
 */

#ifndef UVMASYNC_SERVE_SERVER_HH
#define UVMASYNC_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "serve/daemon.hh"
#include "serve/wire.hh"

namespace uvmasync
{

/** The daemon's socket front end. */
class ServeSocketServer
{
  public:
    /**
     * Bind + listen on @p socketPath (an existing stale socket file
     * is replaced). fatal() when the path is too long for sun_path
     * or not bindable — startup preflight, same discipline as the
     * state directory.
     */
    ServeSocketServer(ServeDaemon &daemon,
                      const std::string &socketPath);
    ~ServeSocketServer();

    ServeSocketServer(const ServeSocketServer &) = delete;
    ServeSocketServer &operator=(const ServeSocketServer &) = delete;

    /**
     * Serve until a Shutdown frame arrives or requestStop() is
     * called. Runs on the calling thread.
     */
    void run();

    /**
     * Ask run() to return; callable from any thread and from signal
     * handlers (an atomic store plus a self-pipe write).
     */
    void requestStop();

    const std::string &socketPath() const { return socketPath_; }

  private:
    struct Connection
    {
        int fd = -1;
        std::uint64_t client = 0;
        FrameReader reader;

        /** Active stream subscription (none when handle == 0). */
        BatchHandle streamHandle = 0;
        std::size_t streamNext = 0;
        bool streamWait = false;
        bool closed = false;

        /** Outbound bytes the nonblocking fd has not accepted yet
         *  (outStart is the consumed prefix; drained on POLLOUT). */
        std::string outBuffer;
        std::size_t outStart = 0;
    };

    void acceptConnection();
    void readConnection(Connection &conn);
    void handleFrame(Connection &conn, const Frame &frame);
    void serviceStream(Connection &conn);
    bool sendFrame(Connection &conn, FrameType type,
                   const std::string &payload);
    void flushConnection(Connection &conn);
    void closeConnection(Connection &conn);

    ServeDaemon &daemon_;
    std::string socketPath_;
    int listenFd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    std::atomic<bool> stopping_{false};
    std::uint64_t nextClient_ = 1; //!< 0 is the recovery client
    std::map<int, std::unique_ptr<Connection>> connections_;
};

/**
 * Blocking client of one daemon connection. One request in flight at
 * a time; stream() collects chunks until StreamEnd. Every method
 * returns false with @p error set instead of throwing — callers are
 * the CLI (exit-code world) and tests.
 */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Connect to a daemon socket. */
    bool connect(const std::string &socketPath, std::string &error);

    bool connected() const { return fd_ >= 0; }

    /** Submit a batch payload; @p handleHex gets the new handle. */
    bool submit(const std::string &payload, std::string &handleHex,
                std::string &error);

    /** Poll a batch; @p reply gets the raw KV status payload. */
    bool status(const std::string &handleHex, std::string &reply,
                std::string &error);

    /**
     * Stream a batch's journal records from @p fromRecord on into
     * @p lines (concatenated, submission order). With @p wait the
     * call returns only once the batch is terminal; without it, it
     * returns whatever exists right now. @p finalState gets the
     * batch state slug from StreamEnd.
     */
    bool stream(const std::string &handleHex, std::size_t fromRecord,
                bool wait, std::string &lines,
                std::string &finalState, std::string &error);

    /** Cancel a batch; @p state gets the resulting state slug. */
    bool cancel(const std::string &handleHex, std::string &state,
                std::string &error);

    /** Fetch daemon counters as raw KV text. */
    bool stats(std::string &reply, std::string &error);

    /** Ask the daemon to exit. */
    bool shutdown(std::string &error);

    void close();

  private:
    bool call(FrameType type, const std::string &payload,
              Frame &reply, std::string &error);

    int fd_ = -1;
};

} // namespace uvmasync

#endif // UVMASYNC_SERVE_SERVER_HH
