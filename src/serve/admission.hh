/**
 * @file
 * Per-client fair admission queue of the campaign daemon.
 *
 * Each client gets its own FIFO of admitted batches; the scheduler
 * drains them round-robin over clients in first-admission order, so
 * one tenant submitting a hundred campaigns cannot starve another
 * tenant's single batch — the second client's first batch runs after
 * at most one batch from every client admitted before it.
 *
 * The queue is deliberately free of clocks and randomness: the drain
 * order is a pure function of the admit()/next() call sequence,
 * which keeps daemon scheduling replayable in tests (determinism
 * lint bans wall-clock reads in src/serve outright). Thread safety
 * is the caller's job — the daemon serializes access under its own
 * state mutex.
 */

#ifndef UVMASYNC_SERVE_ADMISSION_HH
#define UVMASYNC_SERVE_ADMISSION_HH

#include <cstdint>
#include <deque>
#include <vector>

namespace uvmasync
{

/** Opaque daemon-wide batch identity (a persisted sequence number). */
using BatchHandle = std::uint64_t;

/** Round-robin-over-clients FIFO of pending batches. */
class AdmissionQueue
{
  public:
    /** Enqueue @p batch at the tail of @p client's FIFO. */
    void admit(std::uint64_t client, BatchHandle batch);

    /**
     * Dequeue the next batch round-robin: the cursor advances one
     * client per call, clients are ordered by first admission, and
     * a client emptied of batches leaves the rotation. Returns
     * false when nothing is pending.
     */
    bool next(BatchHandle &batch);

    /** Drop one pending batch (cancel); false when not queued. */
    bool remove(BatchHandle batch);

    /** Batches currently pending across all clients. */
    std::size_t pending() const;

    bool empty() const { return pending() == 0; }

  private:
    struct ClientQueue
    {
        std::uint64_t client = 0;
        std::deque<BatchHandle> batches;
    };

    std::vector<ClientQueue> clients_; //!< first-admission order
    std::size_t cursor_ = 0;           //!< round-robin position
};

} // namespace uvmasync

#endif // UVMASYNC_SERVE_ADMISSION_HH
