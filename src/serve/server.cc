#include "serve/server.hh"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <vector>

#include "common/kv_config.hh"
#include "common/logging.hh"
#include "journal/json.hh"

namespace uvmasync
{

namespace
{

/**
 * Ceiling on bytes queued toward one connection (well above the
 * frame ceiling so a maximal stream chunk still fits behind pending
 * replies). A peer that stops reading hits it and is dropped.
 */
constexpr std::size_t maxOutboundBuffered = 64u << 20;

/** Render one KV reply line. */
void
kvLine(std::string &out, const char *key, const std::string &value)
{
    out += key;
    out += " = ";
    out += value;
    out += "\n";
}

void
kvLine(std::string &out, const char *key, std::uint64_t value)
{
    kvLine(out, key, std::to_string(value));
}

std::string
statusPayload(BatchHandle handle, const BatchStatus &status)
{
    std::string out;
    kvLine(out, "batch", hexU64(handle));
    kvLine(out, "state", batchStateName(status.state));
    kvLine(out, "points", status.points);
    kvLine(out, "merged", status.merged);
    kvLine(out, "ok", status.ok);
    kvLine(out, "failed", status.failed);
    kvLine(out, "restored", status.restored);
    kvLine(out, "cached", status.cached);
    for (std::size_t i = 0; i < status.pointStatus.size(); ++i) {
        kvLine(out, ("point." + std::to_string(i)).c_str(),
               status.pointStatus[i]);
    }
    return out;
}

std::string
statsPayload(const ServeStats &stats)
{
    std::string out;
    kvLine(out, "batches.submitted", stats.batchesSubmitted);
    kvLine(out, "batches.recovered", stats.batchesRecovered);
    kvLine(out, "batches.completed", stats.batchesCompleted);
    kvLine(out, "batches.degraded", stats.batchesDegraded);
    kvLine(out, "batches.cancelled", stats.batchesCancelled);
    kvLine(out, "points.merged", stats.pointsMerged);
    kvLine(out, "points.restored", stats.pointsRestored);
    kvLine(out, "points.cached", stats.pointsCached);
    kvLine(out, "store.lookups", stats.storeLookups);
    kvLine(out, "store.hits", stats.storeHits);
    kvLine(out, "store.stored", stats.storeStored);
    kvLine(out, "io.errors", stats.ioErrors);
    return out;
}

/**
 * Parse the `batch` key of a request payload. The KV parser fatal()s
 * on malformed lines; a garbled request must only fail that request,
 * never the daemon — same guard as parseBatchSpec.
 */
bool
parseHandleField(const std::string &payload, BatchHandle &handle,
                 std::string &error)
{
    try {
        FatalThrowScope fatalGuard;
        KvConfig kv = KvConfig::fromString(payload, "<request>");
        std::string text = kv.getString("batch");
        if (text.empty()) {
            error = "request is missing the batch handle";
            return false;
        }
        if (!parseHexU64(text, handle)) {
            error = "malformed batch handle '" + text + "'";
            return false;
        }
        return true;
    } catch (const std::exception &e) {
        error = e.what();
        return false;
    }
}

/**
 * Parse a Stream request (batch + from + wait). The typed getters
 * fatal() on a non-integer `from` or non-boolean `wait`, so they run
 * under the same guard as the handle parse.
 */
bool
parseStreamRequest(const std::string &payload, BatchHandle &handle,
                   std::size_t &fromRecord, bool &wait,
                   std::string &error)
{
    if (!parseHandleField(payload, handle, error))
        return false;
    try {
        FatalThrowScope fatalGuard;
        KvConfig kv = KvConfig::fromString(payload, "<request>");
        std::int64_t from = kv.getInt("from", 0);
        if (from < 0) {
            error = "stream 'from' must be >= 0";
            return false;
        }
        fromRecord = static_cast<std::size_t>(from);
        wait = kv.getBool("wait", true);
        return true;
    } catch (const std::exception &e) {
        error = e.what();
        return false;
    }
}

} // namespace

ServeSocketServer::ServeSocketServer(ServeDaemon &daemon,
                                     const std::string &socketPath)
    : daemon_(daemon), socketPath_(socketPath)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath_.size() >= sizeof(addr.sun_path))
        fatal("serve: socket path '%s' exceeds the %zu-byte AF_UNIX "
              "limit",
              socketPath_.c_str(), sizeof(addr.sun_path) - 1);
    std::memcpy(addr.sun_path, socketPath_.c_str(),
                socketPath_.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        fatal("serve: cannot create socket: %s",
              std::strerror(errno));
    // A stale socket file from a killed daemon would fail bind()
    // with EADDRINUSE; replace it — restart-over-the-same-state-dir
    // is exactly the recovery path.
    ::unlink(socketPath_.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("serve: cannot bind '%s': %s", socketPath_.c_str(),
              std::strerror(errno));
    if (::listen(listenFd_, 64) != 0)
        fatal("serve: cannot listen on '%s': %s",
              socketPath_.c_str(), std::strerror(errno));

    int pipeFds[2];
    if (::pipe2(pipeFds, O_NONBLOCK | O_CLOEXEC) != 0)
        fatal("serve: cannot create wakeup pipe: %s",
              std::strerror(errno));
    wakeRead_ = pipeFds[0];
    wakeWrite_ = pipeFds[1];

    int wakeFd = wakeWrite_;
    daemon_.setWakeup([wakeFd] {
        // Nonblocking: a full pipe already guarantees a pending
        // wakeup, so a dropped byte is harmless.
        ssize_t n = ::write(wakeFd, "w", 1);
        (void)n;
    });
}

ServeSocketServer::~ServeSocketServer()
{
    daemon_.setWakeup(nullptr);
    for (auto &entry : connections_) {
        if (entry.second->fd >= 0)
            ::close(entry.second->fd);
    }
    connections_.clear();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (wakeRead_ >= 0)
        ::close(wakeRead_);
    if (wakeWrite_ >= 0)
        ::close(wakeWrite_);
    ::unlink(socketPath_.c_str());
}

void
ServeSocketServer::requestStop()
{
    stopping_.store(true, std::memory_order_release);
    ssize_t n = ::write(wakeWrite_, "q", 1);
    (void)n;
}

void
ServeSocketServer::run()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        std::vector<pollfd> fds;
        fds.push_back(pollfd{listenFd_, POLLIN, 0});
        fds.push_back(pollfd{wakeRead_, POLLIN, 0});
        std::vector<Connection *> polled;
        for (auto &entry : connections_) {
            short events = POLLIN;
            if (entry.second->outStart <
                entry.second->outBuffer.size())
                events |= POLLOUT;
            fds.push_back(pollfd{entry.second->fd, events, 0});
            polled.push_back(entry.second.get());
        }

        // Infinite timeout: only descriptors wake the loop (client
        // bytes, new connections, merge wakeups) — the server never
        // needs a clock.
        int ready = ::poll(fds.data(), fds.size(), -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            fatal("serve: poll failed: %s", std::strerror(errno));
        }
        if (stopping_.load(std::memory_order_acquire))
            break;

        if (fds[1].revents & POLLIN) {
            char drain[256];
            while (::read(wakeRead_, drain, sizeof(drain)) > 0) {
            }
        }

        for (std::size_t i = 0; i < polled.size(); ++i) {
            Connection &conn = *polled[i];
            if (!conn.closed && (fds[2 + i].revents & POLLOUT))
                flushConnection(conn);
            if (!conn.closed &&
                (fds[2 + i].revents &
                 (POLLIN | POLLHUP | POLLERR)))
                readConnection(conn);
        }

        // A merge (or state change) may have extended any stream:
        // service every live subscription after every wake. Chunks
        // only carry bytes the journal already fsync'd, so an
        // over-eager pass is just a no-op.
        for (auto &entry : connections_) {
            if (!entry.second->closed)
                serviceStream(*entry.second);
        }

        // Erase closed connections BEFORE accepting: accept() can
        // hand back an fd a connection just released, and the map is
        // keyed by fd — a stale entry under the same key would make
        // the insert fail and orphan the new connection (its client
        // would hang forever waiting for replies).
        for (auto it = connections_.begin();
             it != connections_.end();) {
            if (it->second->closed)
                it = connections_.erase(it);
            else
                ++it;
        }

        if (fds[0].revents & POLLIN)
            acceptConnection();
    }
}

void
ServeSocketServer::acceptConnection()
{
    int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0)
        return;
    // Nonblocking: the poll loop must never block in send() on a
    // peer that stopped reading — outbound bytes queue in the
    // connection's buffer instead and drain on POLLOUT.
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        ::close(fd);
        return;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->client = nextClient_++;
    // insert_or_assign, not emplace: the kernel reuses fds, and a
    // silently failed insert would orphan this connection.
    connections_.insert_or_assign(fd, std::move(conn));
}

void
ServeSocketServer::readConnection(Connection &conn)
{
    char buffer[4096];
    ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
        closeConnection(conn);
        return;
    }
    if (n < 0)
        return;
    conn.reader.feed(buffer, static_cast<std::size_t>(n));
    Frame frame;
    std::string error;
    while (!conn.closed && conn.reader.next(frame, error))
        handleFrame(conn, frame);
    if (!conn.closed && conn.reader.corrupt()) {
        sendFrame(conn, FrameType::Error, error);
        closeConnection(conn);
    }
}

void
ServeSocketServer::handleFrame(Connection &conn, const Frame &frame)
{
    std::string error;
    switch (frame.type) {
      case FrameType::Submit: {
        BatchHandle handle =
            daemon_.submit(conn.client, frame.payload, error);
        if (handle == 0) {
            sendFrame(conn, FrameType::Error, error);
            return;
        }
        std::string reply;
        kvLine(reply, "batch", hexU64(handle));
        sendFrame(conn, FrameType::SubmitOk, reply);
        return;
      }
      case FrameType::Status: {
        BatchHandle handle = 0;
        BatchStatus status;
        if (!parseHandleField(frame.payload, handle, error) ||
            !daemon_.status(handle, status, error)) {
            sendFrame(conn, FrameType::Error, error);
            return;
        }
        sendFrame(conn, FrameType::StatusOk,
                  statusPayload(handle, status));
        return;
      }
      case FrameType::Stream: {
        BatchHandle handle = 0;
        std::size_t fromRecord = 0;
        bool wait = true;
        if (!parseStreamRequest(frame.payload, handle, fromRecord,
                                wait, error)) {
            sendFrame(conn, FrameType::Error, error);
            return;
        }
        conn.streamHandle = handle;
        conn.streamNext = fromRecord;
        conn.streamWait = wait;
        serviceStream(conn);
        return;
      }
      case FrameType::Cancel: {
        BatchHandle handle = 0;
        BatchState state = BatchState::Pending;
        if (!parseHandleField(frame.payload, handle, error) ||
            !daemon_.cancel(handle, state, error)) {
            sendFrame(conn, FrameType::Error, error);
            return;
        }
        std::string reply;
        kvLine(reply, "state", batchStateName(state));
        sendFrame(conn, FrameType::CancelOk, reply);
        return;
      }
      case FrameType::Stats:
        sendFrame(conn, FrameType::StatsOk,
                  statsPayload(daemon_.stats()));
        return;
      case FrameType::Shutdown:
        sendFrame(conn, FrameType::ShutdownOk, "");
        requestStop();
        return;
      default:
        sendFrame(conn, FrameType::Error,
                  std::string("unexpected frame type '") +
                      frameTypeName(frame.type) + "'");
        return;
    }
}

void
ServeSocketServer::serviceStream(Connection &conn)
{
    if (conn.streamHandle == 0)
        return;
    StreamChunk chunk;
    std::string error;
    if (!daemon_.stream(conn.streamHandle, conn.streamNext, chunk,
                        error)) {
        sendFrame(conn, FrameType::Error, error);
        conn.streamHandle = 0;
        return;
    }
    if (chunk.records > 0) {
        // One logical chunk can exceed the frame ceiling (a client
        // catching up on a long journal in one request): split it at
        // record-line boundaries so the daemon's own send path can
        // never trip encodeFrame's fatal().
        std::size_t offset = 0;
        while (offset < chunk.lines.size()) {
            std::size_t take = streamSliceBytes(chunk.lines, offset,
                                                maxFramePayload);
            if (!sendFrame(conn, FrameType::StreamChunk,
                           chunk.lines.substr(offset, take)))
                return;
            offset += take;
        }
        conn.streamNext = chunk.nextRecord;
    }
    if (chunk.terminal || !conn.streamWait) {
        std::string reply;
        kvLine(reply, "state", batchStateName(chunk.state));
        sendFrame(conn, FrameType::StreamEnd, reply);
        conn.streamHandle = 0;
    }
}

bool
ServeSocketServer::sendFrame(Connection &conn, FrameType type,
                             const std::string &payload)
{
    if (conn.closed)
        return false;
    conn.outBuffer += encodeFrame(type, payload);
    flushConnection(conn);
    return !conn.closed;
}

void
ServeSocketServer::flushConnection(Connection &conn)
{
    while (conn.outStart < conn.outBuffer.size()) {
        ssize_t n = ::send(conn.fd,
                           conn.outBuffer.data() + conn.outStart,
                           conn.outBuffer.size() - conn.outStart,
                           MSG_NOSIGNAL);
        if (n > 0) {
            conn.outStart += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break; // kernel buffer full; POLLOUT resumes the drain
        closeConnection(conn);
        return;
    }
    if (conn.outStart == conn.outBuffer.size()) {
        conn.outBuffer.clear();
        conn.outStart = 0;
    } else if (conn.outStart > 4096 &&
               conn.outStart * 2 >= conn.outBuffer.size()) {
        conn.outBuffer.erase(0, conn.outStart);
        conn.outStart = 0;
    }
    // A subscriber that stopped reading accumulates outbound bytes
    // without bound; past the ceiling it is dropped — it only ever
    // hurts itself, never the other clients.
    if (conn.outBuffer.size() - conn.outStart > maxOutboundBuffered)
        closeConnection(conn);
}

void
ServeSocketServer::closeConnection(Connection &conn)
{
    if (conn.fd >= 0)
        ::close(conn.fd);
    conn.fd = -1;
    conn.closed = true;
    conn.streamHandle = 0;
    conn.outBuffer.clear();
    conn.outStart = 0;
}

ServeClient::~ServeClient()
{
    close();
}

void
ServeClient::close()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

bool
ServeClient::connect(const std::string &socketPath,
                     std::string &error)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long";
        return false;
    }
    std::memcpy(addr.sun_path, socketPath.c_str(),
                socketPath.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
        error = std::string("cannot create socket: ") +
                std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = "cannot connect to '" + socketPath +
                "': " + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
ServeClient::call(FrameType type, const std::string &payload,
                  Frame &reply, std::string &error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    if (!writeFrame(fd_, type, payload, error))
        return false;
    if (!readFrame(fd_, reply, error))
        return false;
    if (reply.type == FrameType::Error) {
        error = reply.payload;
        return false;
    }
    return true;
}

bool
ServeClient::submit(const std::string &payload,
                    std::string &handleHex, std::string &error)
{
    Frame reply;
    if (!call(FrameType::Submit, payload, reply, error))
        return false;
    if (reply.type != FrameType::SubmitOk) {
        error = std::string("unexpected reply '") +
                frameTypeName(reply.type) + "'";
        return false;
    }
    KvConfig kv = KvConfig::fromString(reply.payload, "<reply>");
    handleHex = kv.getString("batch");
    if (handleHex.empty()) {
        error = "daemon reply is missing the batch handle";
        return false;
    }
    return true;
}

bool
ServeClient::status(const std::string &handleHex, std::string &reply,
                    std::string &error)
{
    std::string request;
    kvLine(request, "batch", handleHex);
    Frame frame;
    if (!call(FrameType::Status, request, frame, error))
        return false;
    if (frame.type != FrameType::StatusOk) {
        error = std::string("unexpected reply '") +
                frameTypeName(frame.type) + "'";
        return false;
    }
    reply = frame.payload;
    return true;
}

bool
ServeClient::stream(const std::string &handleHex,
                    std::size_t fromRecord, bool wait,
                    std::string &lines, std::string &finalState,
                    std::string &error)
{
    std::string request;
    kvLine(request, "batch", handleHex);
    kvLine(request, "from", std::to_string(fromRecord));
    kvLine(request, "wait", wait ? "1" : "0");
    if (!writeFrame(fd_, FrameType::Stream, request, error))
        return false;
    lines.clear();
    for (;;) {
        Frame frame;
        if (!readFrame(fd_, frame, error))
            return false;
        switch (frame.type) {
          case FrameType::StreamChunk:
            lines += frame.payload;
            break;
          case FrameType::StreamEnd: {
            KvConfig kv =
                KvConfig::fromString(frame.payload, "<reply>");
            finalState = kv.getString("state");
            return true;
          }
          case FrameType::Error:
            error = frame.payload;
            return false;
          default:
            error = std::string("unexpected reply '") +
                    frameTypeName(frame.type) + "'";
            return false;
        }
    }
}

bool
ServeClient::cancel(const std::string &handleHex, std::string &state,
                    std::string &error)
{
    std::string request;
    kvLine(request, "batch", handleHex);
    Frame frame;
    if (!call(FrameType::Cancel, request, frame, error))
        return false;
    if (frame.type != FrameType::CancelOk) {
        error = std::string("unexpected reply '") +
                frameTypeName(frame.type) + "'";
        return false;
    }
    KvConfig kv = KvConfig::fromString(frame.payload, "<reply>");
    state = kv.getString("state");
    return true;
}

bool
ServeClient::stats(std::string &reply, std::string &error)
{
    Frame frame;
    if (!call(FrameType::Stats, "", frame, error))
        return false;
    if (frame.type != FrameType::StatsOk) {
        error = std::string("unexpected reply '") +
                frameTypeName(frame.type) + "'";
        return false;
    }
    reply = frame.payload;
    return true;
}

bool
ServeClient::shutdown(std::string &error)
{
    Frame frame;
    if (!call(FrameType::Shutdown, "", frame, error))
        return false;
    if (frame.type != FrameType::ShutdownOk) {
        error = std::string("unexpected reply '") +
                frameTypeName(frame.type) + "'";
        return false;
    }
    return true;
}

} // namespace uvmasync
