/**
 * @file
 * Batch submission payload of the campaign daemon: a small KV (ini)
 * document under the `batch.` prefix, parsed into the exact point
 * grid the batch CLI's `run` command would build.
 *
 * The equivalence is the point: a batch submitted over the socket
 * and the same flags passed to `uvmasync run --journal` must produce
 * bit-identical journal record lines, because batchSpecPoints()
 * mirrors cmdRun's ExperimentPoint construction field for field (and
 * test_serve pins that with a byte-level cmp). Keys:
 *
 *   batch.workload      registry workload name (required)
 *   batch.size          size class (default "super")
 *   batch.runs          measurement repetitions (default 30)
 *   batch.seed          base seed (default 42)
 *   batch.mode          one transfer mode, or "all" (default)
 *   batch.blocks        grid-size override (default 0 = workload's)
 *   batch.threads       block-size override (default 0)
 *   batch.carveout_kib  shared-memory carveout KiB (default 0)
 *   batch.retries       retry budget per point (default 1)
 *
 * Unknown `batch.*` keys are rejected with a did-you-mean hint
 * (closestKey), same as the jobfile linter; unknown workloads, size
 * classes and modes are rejected by name.
 */

#ifndef UVMASYNC_SERVE_BATCH_SPEC_HH
#define UVMASYNC_SERVE_BATCH_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/kv_config.hh"
#include "core/parallel_runner.hh"

namespace uvmasync
{

/** One parsed batch submission. */
struct BatchSpec
{
    std::string workload;
    SizeClass size = SizeClass::Super;
    std::uint32_t runs = 30;
    std::uint64_t seed = 42;

    /** Modes to run, in allTransferModes order; empty = all five. */
    std::vector<TransferMode> modes;

    std::uint64_t blocks = 0;
    std::uint32_t threads = 0;
    std::uint64_t carveoutKib = 0;
    std::uint32_t retries = 1;
};

/**
 * Parse and validate a submission payload. Returns false with an
 * actionable @p error (unknown key/workload/size/mode, missing
 * workload); never fatals — a bad submission must only fail that
 * client's request, not the daemon. Populates the workload registry
 * itself (idempotent), so callers need no setup.
 */
bool parseBatchSpec(const KvConfig &kv, BatchSpec &spec,
                    std::string &error);

/** Convenience overload over the raw KV payload text. */
bool parseBatchSpec(const std::string &payload, BatchSpec &spec,
                    std::string &error);

/**
 * Expand a spec into experiment points — one per mode, identical
 * options — exactly as the batch CLI's `run` command does, so
 * pointConfigHash/campaignHash (and therefore journals and the
 * shared result store) agree between the two front ends.
 */
std::vector<ExperimentPoint> batchSpecPoints(const BatchSpec &spec);

/** Serialize a spec back into submission-payload KV text. */
std::string batchSpecPayload(const BatchSpec &spec);

} // namespace uvmasync

#endif // UVMASYNC_SERVE_BATCH_SPEC_HH
