/**
 * @file
 * Length-prefixed frame codec of the campaign daemon's local-socket
 * protocol.
 *
 * A frame is 5 bytes of header — a 4-byte big-endian payload length
 * and a 1-byte frame type — followed by the payload. Payloads reuse
 * the repo's existing exchange formats verbatim: batch submissions
 * are the KV jobfile text (common/kv_config.hh), result streams are
 * the journal's strict-JSON hexfloat record lines
 * (journal/journal.hh), and status/stats replies are KV text again.
 * The codec adds no serialization of its own, so everything that
 * crosses the socket round-trips byte-exactly through layers that
 * already have determinism tests.
 *
 * FrameReader is an incremental decoder for poll()-driven servers:
 * feed() it whatever recv() returned, take complete frames with
 * next(). readFrame()/writeFrame() are the blocking counterparts for
 * simple clients.
 */

#ifndef UVMASYNC_SERVE_WIRE_HH
#define UVMASYNC_SERVE_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace uvmasync
{

/** Frame types; the byte value is part of the wire format. */
enum class FrameType : std::uint8_t
{
    Submit = 1,  //!< client -> daemon: KV batch spec
    SubmitOk,    //!< daemon -> client: "batch=<hex16>"
    Status,      //!< client -> daemon: "batch=<hex16>"
    StatusOk,    //!< daemon -> client: KV status block
    Stream,      //!< client -> daemon: "batch=<hex16>\nfrom=N\nwait=0|1"
    StreamChunk, //!< daemon -> client: journal record lines
    StreamEnd,   //!< daemon -> client: "state=<slug>"
    Cancel,      //!< client -> daemon: "batch=<hex16>"
    CancelOk,    //!< daemon -> client: "state=<slug>"
    Stats,       //!< client -> daemon: empty payload
    StatsOk,     //!< daemon -> client: KV counters
    Shutdown,    //!< client -> daemon: empty payload
    ShutdownOk,  //!< daemon -> client: empty payload
    Error,       //!< daemon -> client: human-readable message
};

/** Stable frame-type slug ("submit", "stream_chunk", ...). */
const char *frameTypeName(FrameType type);

/** True for byte values that decode to a known FrameType. */
bool frameTypeValid(std::uint8_t raw);

/**
 * Payload ceiling (16 MiB). A frame header announcing more is a
 * protocol error, not an allocation request — a garbage or hostile
 * length prefix must never drive daemon memory.
 */
constexpr std::uint32_t maxFramePayload = 16u << 20;

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Error;
    std::string payload;
};

/** Serialize one frame (header + payload) into a byte string. */
std::string encodeFrame(FrameType type, const std::string &payload);

/**
 * Size of the next slice when splitting record @p lines into frames
 * of at most @p cap bytes, starting at @p offset: the longest prefix
 * that fits, cut back to the last '\n' so no record line straddles a
 * frame boundary. A single line longer than @p cap splits mid-line —
 * concatenating the slices still reproduces the bytes exactly.
 * Returns 0 only when @p offset is past the end (or @p cap is 0).
 */
std::size_t streamSliceBytes(const std::string &lines,
                             std::size_t offset, std::size_t cap);

/**
 * Incremental frame decoder. feed() bytes as they arrive; next()
 * yields complete frames in order. A malformed header (unknown type
 * byte, payload over maxFramePayload) puts the reader into a sticky
 * error state — the stream has lost sync and the connection should
 * be dropped.
 */
class FrameReader
{
  public:
    /** Append raw bytes received from the peer. */
    void feed(const void *data, std::size_t size);

    /**
     * Take the next complete frame. Returns false with @p error
     * empty when more bytes are needed, false with @p error set when
     * the stream is corrupt (sticky).
     */
    bool next(Frame &out, std::string &error);

    /** True once a protocol error has been seen. */
    bool corrupt() const { return !error_.empty(); }

    /** Bytes buffered but not yet consumed by next(). */
    std::size_t pending() const { return buffer_.size() - start_; }

  private:
    std::string buffer_;
    std::size_t start_ = 0; //!< consumed prefix of buffer_
    std::string error_;
};

/** @{
 * Blocking whole-frame I/O over a socket/pipe fd, for clients and
 * tests. Both retry EINTR; readFrame() returns false with an error
 * message on EOF, short reads, or a malformed header; writeFrame()
 * returns false when the peer is gone (EPIPE and friends).
 */
bool readFrame(int fd, Frame &out, std::string &error);
bool writeFrame(int fd, FrameType type, const std::string &payload,
                std::string &error);
/** @} */

} // namespace uvmasync

#endif // UVMASYNC_SERVE_WIRE_HH
