#include "serve/wire.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace uvmasync
{

namespace
{

constexpr std::size_t headerBytes = 5;

void
encodeHeader(char *out, FrameType type, std::uint32_t length)
{
    out[0] = static_cast<char>((length >> 24) & 0xff);
    out[1] = static_cast<char>((length >> 16) & 0xff);
    out[2] = static_cast<char>((length >> 8) & 0xff);
    out[3] = static_cast<char>(length & 0xff);
    out[4] = static_cast<char>(type);
}

std::uint32_t
decodeLength(const unsigned char *header)
{
    return (static_cast<std::uint32_t>(header[0]) << 24) |
           (static_cast<std::uint32_t>(header[1]) << 16) |
           (static_cast<std::uint32_t>(header[2]) << 8) |
           static_cast<std::uint32_t>(header[3]);
}

/** read() the exact byte count, retrying EINTR; false on EOF/error. */
bool
readExact(int fd, void *buffer, std::size_t size, std::string &error)
{
    char *out = static_cast<char *>(buffer);
    std::size_t got = 0;
    while (got < size) {
        ssize_t n = ::read(fd, out + got, size - got);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            error = got == 0 ? "connection closed"
                             : "connection closed mid-frame";
            return false;
        }
        if (errno == EINTR)
            continue;
        error = std::string("read failed: ") + std::strerror(errno);
        return false;
    }
    return true;
}

} // namespace

const char *
frameTypeName(FrameType type)
{
    switch (type) {
      case FrameType::Submit: return "submit";
      case FrameType::SubmitOk: return "submit_ok";
      case FrameType::Status: return "status";
      case FrameType::StatusOk: return "status_ok";
      case FrameType::Stream: return "stream";
      case FrameType::StreamChunk: return "stream_chunk";
      case FrameType::StreamEnd: return "stream_end";
      case FrameType::Cancel: return "cancel";
      case FrameType::CancelOk: return "cancel_ok";
      case FrameType::Stats: return "stats";
      case FrameType::StatsOk: return "stats_ok";
      case FrameType::Shutdown: return "shutdown";
      case FrameType::ShutdownOk: return "shutdown_ok";
      case FrameType::Error: return "error";
    }
    panic("unknown frame type %d", static_cast<int>(type));
}

bool
frameTypeValid(std::uint8_t raw)
{
    return raw >= static_cast<std::uint8_t>(FrameType::Submit) &&
           raw <= static_cast<std::uint8_t>(FrameType::Error);
}

std::string
encodeFrame(FrameType type, const std::string &payload)
{
    if (payload.size() > maxFramePayload)
        fatal("frame payload of %zu bytes exceeds the %u-byte "
              "protocol ceiling",
              payload.size(), maxFramePayload);
    std::string out;
    out.resize(headerBytes);
    encodeHeader(&out[0], type,
                 static_cast<std::uint32_t>(payload.size()));
    out += payload;
    return out;
}

std::size_t
streamSliceBytes(const std::string &lines, std::size_t offset,
                 std::size_t cap)
{
    if (cap == 0 || offset >= lines.size())
        return 0;
    std::size_t take = std::min(lines.size() - offset, cap);
    if (offset + take < lines.size()) {
        std::size_t newline = lines.rfind('\n', offset + take - 1);
        if (newline != std::string::npos && newline >= offset)
            take = newline - offset + 1;
    }
    return take;
}

void
FrameReader::feed(const void *data, std::size_t size)
{
    if (!error_.empty())
        return; // lost sync; bytes are meaningless now
    buffer_.append(static_cast<const char *>(data), size);
}

bool
FrameReader::next(Frame &out, std::string &error)
{
    error.clear();
    if (!error_.empty()) {
        error = error_;
        return false;
    }
    if (pending() < headerBytes)
        return false;
    const auto *header = reinterpret_cast<const unsigned char *>(
        buffer_.data() + start_);
    std::uint32_t length = decodeLength(header);
    std::uint8_t rawType = header[4];
    if (!frameTypeValid(rawType)) {
        error_ = "unknown frame type byte " +
                 std::to_string(static_cast<int>(rawType));
        error = error_;
        return false;
    }
    if (length > maxFramePayload) {
        error_ = "frame payload of " + std::to_string(length) +
                 " bytes exceeds the " +
                 std::to_string(maxFramePayload) +
                 "-byte protocol ceiling";
        error = error_;
        return false;
    }
    if (pending() < headerBytes + length)
        return false;
    out.type = static_cast<FrameType>(rawType);
    out.payload.assign(buffer_, start_ + headerBytes, length);
    start_ += headerBytes + length;
    // Reclaim the consumed prefix once it dominates the buffer, so a
    // long-lived connection does not grow without bound.
    if (start_ > 4096 && start_ * 2 >= buffer_.size()) {
        buffer_.erase(0, start_);
        start_ = 0;
    }
    return true;
}

bool
readFrame(int fd, Frame &out, std::string &error)
{
    unsigned char header[headerBytes];
    if (!readExact(fd, header, sizeof(header), error))
        return false;
    std::uint32_t length = decodeLength(header);
    if (!frameTypeValid(header[4])) {
        error = "unknown frame type byte " +
                std::to_string(static_cast<int>(header[4]));
        return false;
    }
    if (length > maxFramePayload) {
        error = "frame payload of " + std::to_string(length) +
                " bytes exceeds the " +
                std::to_string(maxFramePayload) +
                "-byte protocol ceiling";
        return false;
    }
    out.type = static_cast<FrameType>(header[4]);
    out.payload.resize(length);
    if (length > 0 &&
        !readExact(fd, &out.payload[0], length, error))
        return false;
    return true;
}

bool
writeFrame(int fd, FrameType type, const std::string &payload,
           std::string &error)
{
    std::string bytes = encodeFrame(type, payload);
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        // Prefer send(MSG_NOSIGNAL): a peer that vanished must
        // surface as EPIPE, not kill the process with SIGPIPE. Fall
        // back to write() for non-socket fds (pipes in tests).
        ssize_t n = ::send(fd, bytes.data() + sent,
                           bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        error = std::string("write failed: ") +
                (n < 0 ? std::strerror(errno) : "short write");
        return false;
    }
    return true;
}

} // namespace uvmasync
