#include "serve/daemon.hh"

#include <algorithm>
#include <optional>

#include "common/logging.hh"
#include "journal/journal.hh"
#include "journal/json.hh"
#include "store/fingerprint.hh"
#include "workloads/registry.hh"

namespace uvmasync
{

namespace
{

/**
 * Complete ('\n'-terminated) lines of a journal file after the
 * header. A trailing fragment — a torn append — is never returned:
 * the stream only ever carries bytes the journal fsync'd, so a chunk
 * once served can never change or disappear.
 */
std::vector<std::string>
journalRecordLines(IoEnv &io, const std::string &path)
{
    std::vector<std::string> records;
    std::string contents;
    if (!io.readFile(path, contents).ok)
        return records;
    std::size_t start = 0;
    bool header = true;
    while (start < contents.size()) {
        std::size_t nl = contents.find('\n', start);
        if (nl == std::string::npos)
            break; // torn tail
        if (header)
            header = false;
        else
            records.push_back(contents.substr(start, nl - start + 1));
        start = nl + 1;
    }
    return records;
}

/** PointCache wrapper serializing store access against stats polls. */
class LockedPointCache : public PointCache
{
  public:
    LockedPointCache(PointCache &inner, std::mutex &mutex)
        : inner_(inner), mutex_(mutex)
    {
    }

    bool
    lookup(std::size_t index, PointOutcome &out) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return inner_.lookup(index, out);
    }

    void
    store(std::size_t index, const PointOutcome &out) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        inner_.store(index, out);
    }

  private:
    PointCache &inner_;
    std::mutex &mutex_;
};

} // namespace

const char *
batchStateName(BatchState state)
{
    switch (state) {
      case BatchState::Pending: return "pending";
      case BatchState::Running: return "running";
      case BatchState::Done: return "done";
      case BatchState::Degraded: return "degraded";
      case BatchState::Cancelled: return "cancelled";
    }
    panic("unknown batch state %d", static_cast<int>(state));
}

bool
batchStateTerminal(BatchState state)
{
    return state == BatchState::Done ||
           state == BatchState::Degraded ||
           state == BatchState::Cancelled;
}

bool
parseBatchState(const std::string &text, BatchState &out)
{
    for (BatchState s :
         {BatchState::Pending, BatchState::Running, BatchState::Done,
          BatchState::Degraded, BatchState::Cancelled}) {
        if (text == batchStateName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

void
preflightServeStateDir(const std::string &stateDir, IoEnv &io)
{
    if (stateDir.empty())
        fatal("serve: a state directory is required (--state)");
    IoStatus st = io.makeDir(stateDir);
    if (!st.ok)
        fatal("serve: cannot create state directory '%s': %s",
              stateDir.c_str(), st.text().c_str());
    std::string batches = stateDir + "/batches";
    st = io.makeDir(batches);
    if (!st.ok)
        fatal("serve: cannot create '%s': %s", batches.c_str(),
              st.text().c_str());
    // Probe an actual write: an existing but read-only directory
    // must fail here, at startup, never on a client's first submit.
    std::string probe = batches + "/.preflight";
    st = io.writeFileDurable(probe, "probe\n");
    if (!st.ok)
        fatal("serve: state directory '%s' is not writable: %s",
              stateDir.c_str(), st.text().c_str());
    io.removeFile(probe);
}

ServeDaemon::ServeDaemon(const ServeOptions &opt)
    : opt_(opt), io_(opt.io ? *opt.io : realIoEnv()),
      batchesDir_(opt.stateDir + "/batches"), paused_(opt.paused)
{
    preflightServeStateDir(opt_.stateDir, io_);
    registerAllWorkloads();
    if (!opt_.storeDir.empty()) {
        StoreOptions storeOpt;
        storeOpt.maxBytes = opt_.storeMaxBytes;
        store_ = ResultStore::open(
            opt_.storeDir, modelSemanticsFingerprint(opt_.system),
            storeOpt, io_);
    }
    recover();
    scheduler_ = std::thread([this] { schedulerLoop(); });
}

ServeDaemon::~ServeDaemon()
{
    stop();
}

std::string
ServeDaemon::payloadPath(BatchHandle handle) const
{
    return batchesDir_ + "/" + hexU64(handle) + ".kv";
}

std::string
ServeDaemon::journalPath(BatchHandle handle) const
{
    return batchesDir_ + "/" + hexU64(handle) + ".jsonl";
}

std::string
ServeDaemon::markerPath(BatchHandle handle) const
{
    return batchesDir_ + "/" + hexU64(handle) + ".cancelled";
}

void
ServeDaemon::recover()
{
    // Collect persisted handles (the .kv payloads) in ascending
    // order: recovery re-admits unfinished batches in the order they
    // were originally accepted, under one synthetic client — the
    // fairness ship has sailed for a restart, but the order is
    // deterministic and submission-ranked.
    std::vector<BatchHandle> found;
    std::vector<std::string> names;
    if (io_.listDir(batchesDir_, names).ok) {
        for (const std::string &name : names) {
            if (name.size() != 19 ||
                name.compare(16, 3, ".kv") != 0)
                continue;
            std::uint64_t handle = 0;
            if (!parseHexU64(name.substr(0, 16), handle))
                continue;
            found.push_back(handle);
        }
    }
    std::sort(found.begin(), found.end());

    for (BatchHandle handle : found) {
        auto batch = std::make_unique<Batch>();
        batch->handle = handle;
        ++stats_.batchesRecovered;
        nextHandle_ = std::max(nextHandle_, handle + 1);

        std::string payload;
        std::string error;
        if (!io_.readFile(payloadPath(handle), payload).ok ||
            !parseBatchSpec(payload, batch->spec, error)) {
            // The payload no longer parses (manual edit, version
            // skew). Refuse the batch, not the daemon: park it
            // terminal with the reason on record.
            warn("serve: recovered batch %s is unusable: %s",
                 hexU64(handle).c_str(),
                 error.empty() ? "unreadable payload"
                               : error.c_str());
            batch->recoveryError =
                error.empty() ? "unreadable payload" : error;
            batch->state = BatchState::Degraded;
            batches_.emplace(handle, std::move(batch));
            continue;
        }
        batch->points = batchSpecPoints(batch->spec);

        // Rebuild progress counters from the journal's intact
        // records; the journal is also what stream() serves, so
        // status and stream agree by construction.
        std::vector<std::string> records =
            journalRecordLines(io_, journalPath(handle));
        for (const std::string &line : records) {
            std::size_t index = 0;
            std::uint64_t configHash = 0;
            PointOutcome outcome;
            std::string recordError;
            if (!parseJournalRecord(line, index, configHash, outcome,
                                    recordError))
                break;
            batch->statuses.push_back(outcome.status);
            ++batch->merged;
            // Every record read back at recovery was restored from
            // disk, whether or not the batch still needs to run.
            ++batch->restored;
            outcome.ok ? ++batch->ok : ++batch->failed;
        }

        if (io_.exists(markerPath(handle))) {
            batch->state = BatchState::Cancelled;
        } else if (!batch->points.empty() &&
                   batch->merged >= batch->points.size()) {
            batch->state = batch->failed > 0 ? BatchState::Degraded
                                             : BatchState::Done;
        } else {
            batch->state = BatchState::Pending;
            queue_.admit(0, handle);
        }
        batches_.emplace(handle, std::move(batch));
    }
}

BatchHandle
ServeDaemon::submit(std::uint64_t client, const std::string &payload,
                    std::string &error)
{
    BatchSpec spec;
    if (!parseBatchSpec(payload, spec, error))
        return 0;

    std::lock_guard<std::mutex> lock(mutex_);
    BatchHandle handle = nextHandle_++;
    // The payload hits disk (fsync'd) before the handle is
    // acknowledged: once a client holds a handle, a daemon restart
    // will recover the batch.
    IoStatus persisted =
        io_.writeFileDurable(payloadPath(handle), payload);
    if (!persisted.ok) {
        // Never ack a handle whose payload is not durable — and never
        // leave a torn payload for recovery to trip over (best
        // effort; a survivor parses or parks Degraded, not fatal).
        io_.removeFile(payloadPath(handle));
        ++stats_.ioErrors;
        error = "cannot persist batch payload: " + persisted.text();
        return 0;
    }
    auto batch = std::make_unique<Batch>();
    batch->handle = handle;
    batch->spec = spec;
    batch->points = batchSpecPoints(spec);
    batch->state = BatchState::Pending;
    batches_.emplace(handle, std::move(batch));
    queue_.admit(client, handle);
    ++stats_.batchesSubmitted;
    cv_.notify_all();
    return handle;
}

bool
ServeDaemon::status(BatchHandle handle, BatchStatus &out,
                    std::string &error) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = batches_.find(handle);
    if (it == batches_.end()) {
        error = "unknown batch " + hexU64(handle);
        return false;
    }
    const Batch &batch = *it->second;
    out = BatchStatus{};
    out.state = batch.state;
    out.points = batch.points.size();
    out.merged = batch.merged;
    out.ok = batch.ok;
    out.failed = batch.failed;
    out.restored = batch.restored;
    out.cached = batch.cached;
    out.pointStatus.reserve(out.points);
    for (std::size_t i = 0; i < out.points; ++i) {
        out.pointStatus.push_back(i < batch.statuses.size()
                                      ? pointStatusName(
                                            batch.statuses[i])
                                      : "pending");
    }
    return true;
}

bool
ServeDaemon::stream(BatchHandle handle, std::size_t fromRecord,
                    StreamChunk &out, std::string &error) const
{
    // Snapshot the state BEFORE reading the file: if the state says
    // terminal, every record was already durable when we looked, so
    // "terminal + these lines" can never under-report. The other
    // order could miss a record committed between the two reads.
    BatchState state;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = batches_.find(handle);
        if (it == batches_.end()) {
            error = "unknown batch " + hexU64(handle);
            return false;
        }
        state = it->second->state;
    }
    std::vector<std::string> records =
        journalRecordLines(io_, journalPath(handle));
    out = StreamChunk{};
    out.state = state;
    out.terminal = batchStateTerminal(state);
    if (fromRecord > records.size())
        fromRecord = records.size();
    for (std::size_t i = fromRecord; i < records.size(); ++i) {
        out.lines += records[i];
        ++out.records;
    }
    out.nextRecord = records.size();
    return true;
}

bool
ServeDaemon::cancel(BatchHandle handle, BatchState &result,
                    std::string &error)
{
    bool wake = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = batches_.find(handle);
        if (it == batches_.end()) {
            error = "unknown batch " + hexU64(handle);
            return false;
        }
        Batch &batch = *it->second;
        // A marker that does not persist still cancels THIS process
        // (the in-memory state machine advances); only restart
        // agreement is at risk, which is a degradation to report,
        // never a reason to refuse the cancel.
        auto writeMarker = [&] {
            IoStatus st =
                io_.writeFileDurable(markerPath(handle), "");
            if (!st.ok) {
                ++stats_.ioErrors;
                if (batch.ioError.empty())
                    batch.ioError =
                        "cancel marker not durable: " + st.text();
                warn("serve: batch %s cancel marker not durable "
                     "(%s); a restart may re-run the batch",
                     hexU64(handle).c_str(), st.text().c_str());
            }
        };
        switch (batch.state) {
          case BatchState::Pending:
            // Never ran, never will: out of the queue, marker down
            // so a restart agrees, terminal immediately.
            queue_.remove(handle);
            writeMarker();
            batch.state = BatchState::Cancelled;
            ++stats_.batchesCancelled;
            cv_.notify_all();
            wake = true;
            break;
          case BatchState::Running:
            // Cooperative: the runner stops issuing points, the
            // scheduler finalizes to Cancelled. The marker survives
            // a crash between here and there.
            batch.cancelFlag.store(true, std::memory_order_release);
            writeMarker();
            break;
          case BatchState::Done:
          case BatchState::Degraded:
          case BatchState::Cancelled:
            break; // terminal: cancel is a no-op
        }
        result = batch.state;
    }
    if (wake)
        notifyWakeup();
    return true;
}

ServeStats
ServeDaemon::stats() const
{
    ServeStats out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out = stats_;
    }
    if (store_) {
        std::lock_guard<std::mutex> lock(storeMutex_);
        const StoreStats &s = store_->stats();
        out.storeLookups = s.lookups;
        out.storeHits = s.hits;
        out.storeStored = s.stored;
        out.ioErrors += s.writeErrors;
    }
    return out;
}

std::vector<BatchHandle>
ServeDaemon::handles() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<BatchHandle> out;
    out.reserve(batches_.size());
    for (const auto &entry : batches_)
        out.push_back(entry.first);
    return out;
}

bool
ServeDaemon::waitTerminal(BatchHandle handle, BatchState &result)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = batches_.find(handle);
    if (it == batches_.end())
        return false;
    Batch *batch = it->second.get();
    cv_.wait(lock, [&] {
        return stopping_ || batchStateTerminal(batch->state);
    });
    result = batch->state;
    return true;
}

void
ServeDaemon::resume()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    cv_.notify_all();
}

void
ServeDaemon::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (scheduler_.joinable())
        scheduler_.join();
}

void
ServeDaemon::setWakeup(std::function<void()> wakeup)
{
    std::lock_guard<std::mutex> lock(wakeupMutex_);
    wakeup_ = std::move(wakeup);
}

void
ServeDaemon::notifyWakeup()
{
    // Invoked under the (leaf) wakeup mutex so setWakeup(nullptr)
    // is a full quiesce point: once it returns, no thread is inside
    // a stale hook. The hook is a nonblocking pipe write — cheap
    // enough to hold the lock across.
    std::lock_guard<std::mutex> lock(wakeupMutex_);
    if (wakeup_)
        wakeup_();
}

void
ServeDaemon::schedulerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        cv_.wait(lock, [&] {
            return stopping_ || (!paused_ && !queue_.empty());
        });
        if (stopping_)
            return;
        BatchHandle handle = 0;
        queue_.next(handle);
        Batch &batch = *batches_.at(handle);
        batch.state = BatchState::Running;
        // Counters restart from zero: on a resumed batch the merge
        // callback re-fires for every restored point, so progress
        // accounting is rebuilt, not accumulated.
        batch.merged = batch.ok = batch.failed = 0;
        batch.restored = batch.cached = 0;
        batch.statuses.clear();
        lock.unlock();
        notifyWakeup();
        runBatch(batch);
        lock.lock();
    }
}

void
ServeDaemon::runBatch(Batch &batch)
{
    // Create or resume the batch journal. A journal that no longer
    // matches the batch (hand-edited state, a different campaign at
    // the same path) fatals inside the journal layer; the throw
    // scope turns that into a degraded batch instead of a dead
    // daemon — one tenant's poisoned state must never take the
    // service down.
    std::unique_ptr<RunJournal> journal;
    std::string path = journalPath(batch.handle);
    try {
        FatalThrowScope fatalGuard;
        journal = io_.exists(path)
                      ? RunJournal::resume(path, batch.points, io_)
                      : RunJournal::create(path, batch.points, io_);
    } catch (const std::exception &e) {
        warn("serve: batch %s journal unusable: %s",
             hexU64(batch.handle).c_str(), e.what());
        {
            std::lock_guard<std::mutex> lock(mutex_);
            batch.recoveryError = e.what();
        }
        finishBatch(batch, BatchState::Degraded);
        return;
    }

    std::optional<StorePointCache> cache;
    std::optional<LockedPointCache> lockedCache;
    if (store_) {
        cache.emplace(*store_, batch.points);
        lockedCache.emplace(*cache, storeMutex_);
    }

    RunPolicy policy;
    policy.retries = batch.spec.retries;
    policy.journal = journal.get();
    policy.cache = lockedCache ? &*lockedCache : nullptr;
    policy.cancel = &batch.cancelFlag;
    policy.onPointMerged = [&](std::size_t,
                               const PointOutcome &out) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            batch.statuses.push_back(out.status);
            ++batch.merged;
            out.ok ? ++batch.ok : ++batch.failed;
            if (out.restored)
                ++batch.restored;
            if (out.cached)
                ++batch.cached;
            ++stats_.pointsMerged;
            if (out.restored)
                ++stats_.pointsRestored;
            if (out.cached)
                ++stats_.pointsCached;
        }
        notifyWakeup();
    };

    ParallelRunner runner(opt_.system, opt_.jobs);
    BatchResult result = runner.runPoints(batch.points, policy);

    BatchState final = BatchState::Done;
    if (batch.cancelFlag.load(std::memory_order_acquire)) {
        final = BatchState::Cancelled;
    } else if (!result.allOk()) {
        final = BatchState::Degraded;
    }
    // A journal that went inert mid-batch (disk full, EIO) leaves
    // some merged points undurable: results were computed and
    // streamed-from-memory counters are right, but a restart would
    // re-run the tail. That is a degraded batch with the errno on
    // record — never a dead daemon.
    if (result.metrics.journalErrors > 0 || journal->writeFailed()) {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.ioErrors += result.metrics.journalErrors;
        if (batch.ioError.empty())
            batch.ioError = "journal write failed: " +
                            journal->writeError() + " (" +
                            std::to_string(
                                result.metrics.journalErrors) +
                            " record(s) not journaled)";
        warn("serve: batch %s journal write failed (%s); %zu "
             "record(s) not journaled",
             hexU64(batch.handle).c_str(),
             journal->writeError().c_str(),
             result.metrics.journalErrors);
        if (final == BatchState::Done)
            final = BatchState::Degraded;
    }
    finishBatch(batch, final);
}

void
ServeDaemon::finishBatch(Batch &batch, BatchState state)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        batch.state = state;
        if (state == BatchState::Cancelled) {
            ++stats_.batchesCancelled;
        } else {
            ++stats_.batchesCompleted;
            if (state == BatchState::Degraded)
                ++stats_.batchesDegraded;
        }
        cv_.notify_all();
    }
    notifyWakeup();
}

} // namespace uvmasync
