#include "serve/admission.hh"

#include <algorithm>

namespace uvmasync
{

void
AdmissionQueue::admit(std::uint64_t client, BatchHandle batch)
{
    for (ClientQueue &q : clients_) {
        if (q.client == client) {
            q.batches.push_back(batch);
            return;
        }
    }
    ClientQueue q;
    q.client = client;
    q.batches.push_back(batch);
    clients_.push_back(std::move(q));
}

bool
AdmissionQueue::next(BatchHandle &batch)
{
    if (clients_.empty())
        return false;
    if (cursor_ >= clients_.size())
        cursor_ = 0;
    // Clients only sit in the rotation while they have batches, so
    // the client under the cursor always serves.
    std::size_t served = cursor_;
    ClientQueue &q = clients_[served];
    batch = q.batches.front();
    q.batches.pop_front();
    if (q.batches.empty()) {
        clients_.erase(clients_.begin() +
                       static_cast<std::ptrdiff_t>(served));
        // The erase shifted everything after `served` left by one;
        // the cursor already points at the next client.
    } else {
        cursor_ = served + 1;
    }
    if (cursor_ >= clients_.size())
        cursor_ = 0;
    return true;
}

bool
AdmissionQueue::remove(BatchHandle batch)
{
    for (std::size_t i = 0; i < clients_.size(); ++i) {
        ClientQueue &q = clients_[i];
        auto it = std::find(q.batches.begin(), q.batches.end(), batch);
        if (it == q.batches.end())
            continue;
        q.batches.erase(it);
        if (q.batches.empty()) {
            clients_.erase(clients_.begin() +
                           static_cast<std::ptrdiff_t>(i));
            if (cursor_ > i)
                --cursor_;
            if (cursor_ >= clients_.size())
                cursor_ = 0;
        }
        return true;
    }
    return false;
}

std::size_t
AdmissionQueue::pending() const
{
    std::size_t n = 0;
    for (const ClientQueue &q : clients_)
        n += q.batches.size();
    return n;
}

} // namespace uvmasync
