#include "serve/batch_spec.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/types.hh"
#include "gpu/transfer_mode.hh"
#include "workloads/registry.hh"
#include "workloads/size_class.hh"

namespace uvmasync
{

namespace
{

const std::vector<std::string> &
knownKeys()
{
    static const std::vector<std::string> keys = {
        "batch.workload", "batch.size",    "batch.runs",
        "batch.seed",     "batch.mode",    "batch.blocks",
        "batch.threads",  "batch.carveout_kib", "batch.retries",
    };
    return keys;
}

bool
rejectUnknownKeys(const KvConfig &kv, std::string &error)
{
    const std::vector<std::string> &known = knownKeys();
    for (const std::string &key : kv.keys()) {
        if (std::find(known.begin(), known.end(), key) != known.end())
            continue;
        error = "unknown batch key '" + key + "'";
        std::string hint = closestKey(key, known);
        if (!hint.empty())
            error += " (did you mean '" + hint + "'?)";
        return false;
    }
    return true;
}

} // namespace

bool
parseBatchSpec(const KvConfig &kv, BatchSpec &spec, std::string &error)
{
    // Self-sufficient like Experiment/ParallelRunner: the workload
    // lookup below must never depend on what the caller ran first.
    registerAllWorkloads();

    if (!rejectUnknownKeys(kv, error))
        return false;

    spec = BatchSpec{};
    spec.workload = kv.getString("batch.workload");
    if (spec.workload.empty()) {
        error = "batch.workload is required";
        return false;
    }
    if (!WorkloadRegistry::instance().find(spec.workload)) {
        error = "unknown workload '" + spec.workload + "'";
        std::string hint = closestKey(
            spec.workload, WorkloadRegistry::instance().names());
        if (!hint.empty())
            error += " (did you mean '" + hint + "'?)";
        return false;
    }

    std::string size = kv.getString("batch.size", "super");
    if (!parseSizeClass(size, spec.size)) {
        error = "unknown size class '" + size + "'";
        return false;
    }

    std::string mode = kv.getString("batch.mode", "all");
    if (mode == "all") {
        spec.modes.clear();
    } else {
        TransferMode m;
        if (!parseTransferMode(mode, m)) {
            error = "unknown mode '" + mode + "'";
            return false;
        }
        spec.modes.push_back(m);
    }

    // The typed getters fatal() on malformed numbers; a bad
    // submission must only fail this request, so trap the fatal and
    // surface it as a parse error instead.
    try {
        FatalThrowScope fatalGuard;
        std::int64_t runs = kv.getInt("batch.runs", 30);
        std::int64_t seed = kv.getInt("batch.seed", 42);
        std::int64_t blocks = kv.getInt("batch.blocks", 0);
        std::int64_t threads = kv.getInt("batch.threads", 0);
        std::int64_t carveout = kv.getInt("batch.carveout_kib", 0);
        std::int64_t retries = kv.getInt("batch.retries", 1);
        if (runs < 1) {
            error = "batch.runs must be >= 1";
            return false;
        }
        if (seed < 0) {
            error = "batch.seed must be >= 0";
            return false;
        }
        if (blocks < 0 || threads < 0 || carveout < 0 ||
            retries < 0) {
            error = "batch.blocks/threads/carveout_kib/retries must "
                    "be >= 0";
            return false;
        }
        spec.runs = static_cast<std::uint32_t>(runs);
        spec.seed = static_cast<std::uint64_t>(seed);
        spec.blocks = static_cast<std::uint64_t>(blocks);
        spec.threads = static_cast<std::uint32_t>(threads);
        spec.carveoutKib = static_cast<std::uint64_t>(carveout);
        spec.retries = static_cast<std::uint32_t>(retries);
    } catch (const std::exception &e) {
        error = e.what();
        return false;
    }
    return true;
}

bool
parseBatchSpec(const std::string &payload, BatchSpec &spec,
               std::string &error)
{
    // The KV parser itself fatal()s on malformed lines; a garbled
    // submission must only fail this request, never the daemon.
    try {
        FatalThrowScope fatalGuard;
        KvConfig kv = KvConfig::fromString(payload, "<submit>");
        return parseBatchSpec(kv, spec, error);
    } catch (const std::exception &e) {
        error = e.what();
        return false;
    }
}

std::vector<ExperimentPoint>
batchSpecPoints(const BatchSpec &spec)
{
    // Mirror cmdRun exactly: one point per mode, identical options,
    // lint/trace/inject left at their defaults. Any divergence here
    // breaks journal byte-identity with the batch CLI (pinned by
    // test_serve's cmp against a CLI-written journal).
    ExperimentOptions opts;
    opts.size = spec.size;
    opts.runs = spec.runs;
    opts.baseSeed = spec.seed;
    opts.geometry.gridBlocks = spec.blocks;
    opts.geometry.threadsPerBlock = spec.threads;
    opts.sharedCarveout = kib(spec.carveoutKib);

    std::vector<TransferMode> modes = spec.modes;
    if (modes.empty())
        modes.assign(allTransferModes.begin(), allTransferModes.end());

    std::vector<ExperimentPoint> points;
    points.reserve(modes.size());
    for (TransferMode m : modes)
        points.push_back(ExperimentPoint{spec.workload, m, opts});
    return points;
}

std::string
batchSpecPayload(const BatchSpec &spec)
{
    std::string out;
    out += "batch.workload = " + spec.workload + "\n";
    out += "batch.size = " + std::string(sizeClassName(spec.size)) +
           "\n";
    out += "batch.runs = " + std::to_string(spec.runs) + "\n";
    out += "batch.seed = " + std::to_string(spec.seed) + "\n";
    out += "batch.mode = ";
    out += spec.modes.size() == 1 ? transferModeName(spec.modes[0])
                                  : "all";
    out += "\n";
    out += "batch.blocks = " + std::to_string(spec.blocks) + "\n";
    out += "batch.threads = " + std::to_string(spec.threads) + "\n";
    out += "batch.carveout_kib = " + std::to_string(spec.carveoutKib) +
           "\n";
    out += "batch.retries = " + std::to_string(spec.retries) + "\n";
    return out;
}

} // namespace uvmasync
