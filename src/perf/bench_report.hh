/**
 * @file
 * Schema of the perf-trajectory artifact (BENCH_*.json).
 *
 * A BenchReport is the committed record of one harness run: a list of
 * timed phases (median-of-N after warmup discard, work-rate per
 * phase, optional per-step breakdown), derived machine-independent
 * metrics (speedup ratios, overhead percentages), a machine
 * fingerprint, and the run's peak RSS. The JSON encoding rides on the
 * journal's strict writer/parser (journal/json.hh): doubles travel as
 * exact %a hexfloat strings, so a report round-trips bit-for-bit and
 * an external diff of two artifacts is meaningful.
 *
 * Comparison semantics (compareBenchReports): the machine fingerprint
 * and peak RSS are recorded for provenance but NEVER compared — only
 * per-phase rates and derived metrics gate. A phase regresses when
 * its rate falls below (1 - tolerance) x baseline; being faster than
 * the band is reported but never fails. A baseline phase missing from
 * the current report is a failure (the harness lost coverage).
 */

#ifndef UVMASYNC_PERF_BENCH_REPORT_HH
#define UVMASYNC_PERF_BENCH_REPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace uvmasync
{

/** Bump when the JSON layout changes shape (append-only fields ok). */
inline constexpr std::uint32_t benchSchemaVersion = 1;

/**
 * Exact median: odd count takes the middle element, even count the
 * arithmetic mean of the two middle elements. Fatal on empty input.
 */
double medianOf(std::vector<double> samples);

/** Host identity; provenance only, excluded from comparisons. */
struct MachineFingerprint
{
    std::string os;       //!< uname sysname+release ("Linux 6.1.0")
    std::string arch;     //!< uname machine ("x86_64")
    std::string compiler; //!< "gcc 13.2.0" / "clang 17.0.1"
    std::string buildType; //!< CMAKE_BUILD_TYPE baked into the build
    std::uint64_t hardwareThreads = 0;
};

/** One timed phase of the harness. */
struct BenchPhase
{
    std::string name; //!< stable id ("event_loop_calendar", ...)
    std::string unit; //!< what rate counts ("events/sec", ...)

    /** Work items executed per measured repetition. */
    std::uint64_t itemsPerRep = 0;

    /** Measured repetitions (after warmup) and discarded warmups. */
    std::uint32_t reps = 0;
    std::uint32_t warmup = 0;

    /** Wall time of each measured rep, ns (warmups not included). */
    std::vector<double> samplesNs;

    /** medianOf(samplesNs). */
    double medianNs = 0.0;

    /** itemsPerRep / median seconds — the phase's headline. */
    double rate = 0.0;

    /** Optional per-step breakdown, ns (name order is stable). */
    std::vector<std::pair<std::string, double>> breakdown;
};

/** One harness run: the unit the repo commits and diffs. */
struct BenchReport
{
    std::uint32_t schema = benchSchemaVersion;
    std::string label; //!< artifact id ("BENCH_7")
    MachineFingerprint machine;
    std::uint64_t peakRssBytes = 0;
    std::vector<BenchPhase> phases;

    /** Machine-independent derived metrics (speedups, overheads). */
    std::vector<std::pair<std::string, double>> derived;

    /** Phase by name; nullptr when absent. */
    const BenchPhase *findPhase(const std::string &name) const;

    /** Derived metric by name; false when absent. */
    bool findDerived(const std::string &name, double &out) const;
};

/**
 * Assemble a phase from raw consecutive rep timings: the first
 * @p warmup samples are discarded, the rest become samplesNs, and
 * medianNs/rate are computed from them. Fatal when @p allSamplesNs
 * does not outnumber the warmups.
 */
BenchPhase finishPhase(std::string name, std::string unit,
                       std::uint64_t itemsPerRep, std::uint32_t warmup,
                       std::vector<double> allSamplesNs);

/** Serialize to one strict-JSON document (journal/json.hh writer). */
std::string writeBenchReport(const BenchReport &report);

/**
 * Parse a writeBenchReport() document. Returns false with a short
 * reason in @p error on malformed JSON, schema mismatch, or missing
 * fields.
 */
bool parseBenchReport(const std::string &text, BenchReport &out,
                      std::string &error);

/** One row of a comparison: current phase vs its baseline. */
struct PhaseDelta
{
    std::string name;
    double baselineRate = 0.0;
    double currentRate = 0.0;

    /** current / baseline (0 when the phase is missing). */
    double ratio = 0.0;

    /** Phase present in the baseline but absent from current. */
    bool missing = false;

    /** ratio < 1 - tolerance (or missing): this row fails the gate. */
    bool regressed = false;
};

/** Outcome of compareBenchReports(). */
struct BenchComparison
{
    std::vector<PhaseDelta> phases; //!< baseline order
    std::vector<PhaseDelta> derived;
    bool pass = true; //!< no row regressed
};

/**
 * Gate @p current against @p baseline with a relative tolerance band
 * (0.15 = +-15%). Only rates and derived metrics are compared — the
 * fingerprint and RSS never affect the outcome. Phases that exist
 * only in @p current are ignored (new coverage is not a regression),
 * and `*_overhead_pct` derived metrics are exempt (lower-is-better
 * and near zero, where ratios are meaningless; the harness gates
 * them absolutely at generation time instead).
 */
BenchComparison compareBenchReports(const BenchReport &baseline,
                                    const BenchReport &current,
                                    double tolerance);

/**
 * Render a comparison as a fixed-width per-phase delta table
 * (baseline rate, current rate, ratio, verdict) for check.sh logs.
 */
std::string formatComparison(const BenchComparison &cmp,
                             double tolerance);

} // namespace uvmasync

#endif // UVMASYNC_PERF_BENCH_REPORT_HH
