#include "perf/bench_report.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "journal/json.hh"

namespace uvmasync
{

double
medianOf(std::vector<double> samples)
{
    UVMASYNC_ASSERT(!samples.empty(), "median of an empty sample set");
    std::sort(samples.begin(), samples.end());
    std::size_t n = samples.size();
    if (n % 2 == 1)
        return samples[n / 2];
    return (samples[n / 2 - 1] + samples[n / 2]) / 2.0;
}

const BenchPhase *
BenchReport::findPhase(const std::string &name) const
{
    for (const BenchPhase &p : phases) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

bool
BenchReport::findDerived(const std::string &name, double &out) const
{
    for (const auto &[key, value] : derived) {
        if (key == name) {
            out = value;
            return true;
        }
    }
    return false;
}

BenchPhase
finishPhase(std::string name, std::string unit,
            std::uint64_t itemsPerRep, std::uint32_t warmup,
            std::vector<double> allSamplesNs)
{
    UVMASYNC_ASSERT(allSamplesNs.size() > warmup,
                    "phase '%s': %zu samples cannot cover %u warmups",
                    name.c_str(), allSamplesNs.size(), warmup);
    BenchPhase phase;
    phase.name = std::move(name);
    phase.unit = std::move(unit);
    phase.itemsPerRep = itemsPerRep;
    phase.warmup = warmup;
    phase.samplesNs.assign(allSamplesNs.begin() + warmup,
                           allSamplesNs.end());
    phase.reps = static_cast<std::uint32_t>(phase.samplesNs.size());
    phase.medianNs = medianOf(phase.samplesNs);
    phase.rate = phase.medianNs > 0.0
                     ? static_cast<double>(itemsPerRep) /
                           (phase.medianNs * 1e-9)
                     : 0.0;
    return phase;
}

std::string
writeBenchReport(const BenchReport &report)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value(static_cast<std::uint64_t>(report.schema));
    w.key("label").value(report.label);

    w.key("machine").beginObject();
    w.key("os").value(report.machine.os);
    w.key("arch").value(report.machine.arch);
    w.key("compiler").value(report.machine.compiler);
    w.key("build_type").value(report.machine.buildType);
    w.key("hardware_threads").value(report.machine.hardwareThreads);
    w.endObject();

    w.key("peak_rss_bytes").value(report.peakRssBytes);

    w.key("phases").beginArray();
    for (const BenchPhase &p : report.phases) {
        w.beginObject();
        w.key("name").value(p.name);
        w.key("unit").value(p.unit);
        w.key("items_per_rep").value(p.itemsPerRep);
        w.key("reps").value(static_cast<std::uint64_t>(p.reps));
        w.key("warmup").value(static_cast<std::uint64_t>(p.warmup));
        w.key("samples_ns").beginArray();
        for (double s : p.samplesNs)
            w.hex(s);
        w.endArray();
        w.key("median_ns").hex(p.medianNs);
        w.key("rate").hex(p.rate);
        w.key("breakdown").beginObject();
        for (const auto &[key, value] : p.breakdown)
            w.key(key).hex(value);
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.key("derived").beginObject();
    for (const auto &[key, value] : report.derived)
        w.key(key).hex(value);
    w.endObject();

    w.endObject();
    return w.str();
}

namespace
{

bool
memberString(const JsonValue &obj, const char *name, std::string &out,
             std::string &error)
{
    const JsonValue *v = obj.find(name);
    if (!v || !v->isString()) {
        error = std::string("missing string member '") + name + "'";
        return false;
    }
    out = v->text;
    return true;
}

bool
memberUint(const JsonValue &obj, const char *name, std::uint64_t &out,
           std::string &error)
{
    const JsonValue *v = obj.find(name);
    if (!v || !v->asUint(out)) {
        error = std::string("missing uint member '") + name + "'";
        return false;
    }
    return true;
}

bool
memberHex(const JsonValue &obj, const char *name, double &out,
          std::string &error)
{
    const JsonValue *v = obj.find(name);
    if (!v || !v->asHex(out)) {
        error = std::string("missing hexfloat member '") + name + "'";
        return false;
    }
    return true;
}

bool
hexPairs(const JsonValue &obj,
         std::vector<std::pair<std::string, double>> &out,
         std::string &error)
{
    for (const auto &[key, value] : obj.members) {
        double d = 0.0;
        if (!value.asHex(d)) {
            error = "member '" + key + "' is not a hexfloat";
            return false;
        }
        out.emplace_back(key, d);
    }
    return true;
}

} // namespace

bool
parseBenchReport(const std::string &text, BenchReport &out,
                 std::string &error)
{
    JsonValue root;
    if (!parseJson(text, root, error))
        return false;
    if (!root.isObject()) {
        error = "report is not a JSON object";
        return false;
    }

    std::uint64_t schema = 0;
    if (!memberUint(root, "schema", schema, error))
        return false;
    if (schema != benchSchemaVersion) {
        error = strfmt("unsupported bench schema %llu (want %u)",
                       static_cast<unsigned long long>(schema),
                       benchSchemaVersion);
        return false;
    }
    out.schema = static_cast<std::uint32_t>(schema);
    if (!memberString(root, "label", out.label, error))
        return false;

    const JsonValue *machine = root.find("machine");
    if (!machine || !machine->isObject()) {
        error = "missing 'machine' object";
        return false;
    }
    if (!memberString(*machine, "os", out.machine.os, error) ||
        !memberString(*machine, "arch", out.machine.arch, error) ||
        !memberString(*machine, "compiler", out.machine.compiler,
                      error) ||
        !memberString(*machine, "build_type", out.machine.buildType,
                      error) ||
        !memberUint(*machine, "hardware_threads",
                    out.machine.hardwareThreads, error))
        return false;

    if (!memberUint(root, "peak_rss_bytes", out.peakRssBytes, error))
        return false;

    const JsonValue *phases = root.find("phases");
    if (!phases || !phases->isArray()) {
        error = "missing 'phases' array";
        return false;
    }
    out.phases.clear();
    for (const JsonValue &pv : phases->items) {
        if (!pv.isObject()) {
            error = "phase entry is not an object";
            return false;
        }
        BenchPhase p;
        std::uint64_t reps = 0, warmup = 0;
        if (!memberString(pv, "name", p.name, error) ||
            !memberString(pv, "unit", p.unit, error) ||
            !memberUint(pv, "items_per_rep", p.itemsPerRep, error) ||
            !memberUint(pv, "reps", reps, error) ||
            !memberUint(pv, "warmup", warmup, error) ||
            !memberHex(pv, "median_ns", p.medianNs, error) ||
            !memberHex(pv, "rate", p.rate, error))
            return false;
        p.reps = static_cast<std::uint32_t>(reps);
        p.warmup = static_cast<std::uint32_t>(warmup);
        const JsonValue *samples = pv.find("samples_ns");
        if (!samples || !samples->isArray()) {
            error = "phase '" + p.name + "': missing samples_ns";
            return false;
        }
        for (const JsonValue &sv : samples->items) {
            double d = 0.0;
            if (!sv.asHex(d)) {
                error = "phase '" + p.name + "': bad sample";
                return false;
            }
            p.samplesNs.push_back(d);
        }
        const JsonValue *breakdown = pv.find("breakdown");
        if (!breakdown || !breakdown->isObject()) {
            error = "phase '" + p.name + "': missing breakdown";
            return false;
        }
        if (!hexPairs(*breakdown, p.breakdown, error))
            return false;
        out.phases.push_back(std::move(p));
    }

    const JsonValue *derived = root.find("derived");
    if (!derived || !derived->isObject()) {
        error = "missing 'derived' object";
        return false;
    }
    out.derived.clear();
    return hexPairs(*derived, out.derived, error);
}

namespace
{

PhaseDelta
deltaRow(const std::string &name, double base, double cur,
         bool present, double tolerance)
{
    PhaseDelta d;
    d.name = name;
    d.baselineRate = base;
    d.currentRate = cur;
    d.missing = !present;
    d.ratio = (present && base > 0.0) ? cur / base : 0.0;
    d.regressed = d.missing || d.ratio < 1.0 - tolerance;
    return d;
}

} // namespace

BenchComparison
compareBenchReports(const BenchReport &baseline,
                    const BenchReport &current, double tolerance)
{
    BenchComparison cmp;
    for (const BenchPhase &base : baseline.phases) {
        const BenchPhase *cur = current.findPhase(base.name);
        PhaseDelta d = deltaRow(base.name, base.rate,
                                cur ? cur->rate : 0.0,
                                cur != nullptr, tolerance);
        cmp.pass = cmp.pass && !d.regressed;
        cmp.phases.push_back(std::move(d));
    }
    for (const auto &[name, base] : baseline.derived) {
        // Overhead percentages are lower-is-better and hover near
        // zero, where ratios are meaningless (0.3% vs 0.5% is not a
        // regression); they are gated absolutely at generation time
        // (--max-null-overhead), not diffed against a baseline.
        if (name.size() > 13 &&
            name.compare(name.size() - 13, 13, "_overhead_pct") == 0)
            continue;
        double cur = 0.0;
        bool present = current.findDerived(name, cur);
        PhaseDelta d = deltaRow(name, base, cur, present, tolerance);
        cmp.pass = cmp.pass && !d.regressed;
        cmp.derived.push_back(std::move(d));
    }
    return cmp;
}

std::string
formatComparison(const BenchComparison &cmp, double tolerance)
{
    std::string out = strfmt(
        "%-28s %14s %14s %7s  %s\n", "phase", "baseline", "current",
        "ratio", "verdict");
    auto row = [&](const PhaseDelta &d) {
        const char *verdict =
            d.missing ? "MISSING"
            : d.regressed ? "REGRESSED"
            : d.ratio > 1.0 + tolerance ? "improved"
            : "ok";
        out += strfmt("%-28s %14.0f %14.0f %7.3f  %s\n",
                      d.name.c_str(), d.baselineRate, d.currentRate,
                      d.ratio, verdict);
    };
    for (const PhaseDelta &d : cmp.phases)
        row(d);
    for (const PhaseDelta &d : cmp.derived)
        row(d);
    return out;
}

} // namespace uvmasync
