/**
 * @file
 * Self-timing side of the perf-trajectory harness.
 *
 * This is HOST-side measurement code: it reads std::chrono's
 * steady_clock (allowlisted in tools/determinism_lint.sh for
 * src/perf) and /proc, and none of it ever feeds simulation state —
 * the simulator's determinism guarantees are untouched. The pure
 * schema/median/compare logic lives in perf/bench_report.hh so it
 * stays testable with synthetic timings.
 */

#ifndef UVMASYNC_PERF_HARNESS_HH
#define UVMASYNC_PERF_HARNESS_HH

#include <cstdint>
#include <functional>
#include <string>

#include "perf/bench_report.hh"

namespace uvmasync
{

/**
 * Time @p body warmup+reps times, discard the warmups, and return
 * the finished phase (median-of-N, rate = itemsPerRep/median). The
 * body runs identically every rep; per-rep state reset belongs
 * inside it.
 */
BenchPhase runBenchPhase(std::string name, std::string unit,
                         std::uint64_t itemsPerRep,
                         std::uint32_t reps, std::uint32_t warmup,
                         const std::function<void()> &body);

/** Wall-clock one call of @p body, in ns. */
double timeOnceNs(const std::function<void()> &body);

/** Fingerprint of the running host (provenance, never compared). */
MachineFingerprint localFingerprint();

/**
 * Peak resident set of this process so far, bytes (VmHWM via
 * /proc/self/status, getrusage fallback; 0 when unavailable).
 */
std::uint64_t peakRssBytes();

} // namespace uvmasync

#endif // UVMASYNC_PERF_HARNESS_HH
