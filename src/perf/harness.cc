#include "perf/harness.hh"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include <sys/resource.h>
#include <sys/utsname.h>

#include "common/logging.hh"

namespace uvmasync
{

double
timeOnceNs(const std::function<void()> &body)
{
    auto t0 = std::chrono::steady_clock::now();
    body();
    auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
}

BenchPhase
runBenchPhase(std::string name, std::string unit,
              std::uint64_t itemsPerRep, std::uint32_t reps,
              std::uint32_t warmup, const std::function<void()> &body)
{
    UVMASYNC_ASSERT(reps > 0, "phase '%s' needs at least one rep",
                    name.c_str());
    std::vector<double> samples;
    samples.reserve(warmup + reps);
    for (std::uint32_t i = 0; i < warmup + reps; ++i)
        samples.push_back(timeOnceNs(body));
    return finishPhase(std::move(name), std::move(unit), itemsPerRep,
                       warmup, std::move(samples));
}

MachineFingerprint
localFingerprint()
{
    MachineFingerprint fp;
    struct utsname un{};
    if (uname(&un) == 0) {
        fp.os = std::string(un.sysname) + " " + un.release;
        fp.arch = un.machine;
    } else {
        fp.os = "unknown";
        fp.arch = "unknown";
    }
#if defined(__clang__)
    fp.compiler = strfmt("clang %d.%d.%d", __clang_major__,
                         __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
    fp.compiler = strfmt("gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__,
                         __GNUC_PATCHLEVEL__);
#else
    fp.compiler = "unknown";
#endif
#ifdef NDEBUG
    fp.buildType = "optimized";
#else
    fp.buildType = "assert-enabled";
#endif
    fp.hardwareThreads = std::thread::hardware_concurrency();
    return fp;
}

std::uint64_t
peakRssBytes()
{
    // VmHWM is the kernel's high-water mark for the resident set.
    if (FILE *f = std::fopen("/proc/self/status", "r")) {
        char line[256];
        std::uint64_t kb = 0;
        while (std::fgets(line, sizeof(line), f)) {
            if (std::sscanf(line, "VmHWM: %llu kB",
                            reinterpret_cast<unsigned long long *>(
                                &kb)) == 1) {
                std::fclose(f);
                return kb * 1024;
            }
        }
        std::fclose(f);
    }
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) == 0)
        return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
    return 0;
}

} // namespace uvmasync
