/**
 * @file
 * Per-resource metrics folded out of a recorded trace.
 *
 * Everything here is derived purely from the event list — no access
 * to simulator internals — so the same numbers can be recomputed from
 * an exported trace. The headline quantities mirror the paper's
 * analysis axes: link busy/utilization per direction, how large the
 * far-fault batches grew, how much speculative traffic paid off, and
 * how much of the kernel window overlapped PCIe activity (the async
 * shaping effect).
 */

#ifndef UVMASYNC_TRACE_METRICS_HH
#define UVMASYNC_TRACE_METRICS_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace uvmasync
{

/** Busy/utilization for one lane. */
struct LaneMetrics
{
    std::string name;
    std::uint64_t spans = 0; //!< span count (instants excluded)
    Tick busyPs = 0;         //!< union of span windows
    double utilization = 0;  //!< busyPs / trace wall end
};

/** Fault-batch size histogram: log2 buckets 1, 2-3, 4-7, ..., >=128. */
inline constexpr std::size_t faultBatchBuckets = 8;

/** Label for histogram bucket @p i ("1", "2-3", ..., ">=128"). */
std::string faultBatchBucketLabel(std::size_t i);

/** Aggregate metrics computed by computeTraceMetrics(). */
struct TraceMetrics
{
    Tick wallEndPs = 0;
    std::vector<LaneMetrics> lanes;

    // PCIe: queueing recorded as arg2 on every occupancy span.
    Tick pcieBusyPs = 0;      //!< union across all pcie lanes
    Tick pcieQueueWaitPs = 0; //!< total time requests waited for the link

    // Far-fault servicing.
    std::uint64_t faultsRaised = 0;
    std::uint64_t faultBatches = 0;
    std::array<std::uint64_t, faultBatchBuckets> faultBatchHist{};

    // Prefetch effectiveness: issued counts chunks speculatively
    // moved; hits are demand touches served from them; wasted are
    // evicted untouched.
    std::uint64_t prefetchIssued = 0;
    std::uint64_t prefetchHits = 0;
    std::uint64_t prefetchWasted = 0;
    double prefetchAccuracy = 0; //!< hits / issued (0 when none issued)

    // Compute/transfer overlap: intersection of kernel-phase windows
    // with PCIe occupancy, as a fraction of kernel busy time.
    Tick kernelBusyPs = 0;
    Tick overlapPs = 0;
    double overlapFraction = 0; //!< overlapPs / kernelBusyPs

    // Fault injection (all zero — and absent from the CSV/table —
    // when the trace has no Inject events).
    std::uint64_t injectEvents = 0;  //!< all Inject spans + instants
    std::uint64_t injectRetries = 0; //!< transient-failure retries
    std::uint64_t injectAborts = 0;  //!< retry budgets exhausted
    Tick injectBackoffPs = 0;        //!< total retry backoff
    std::uint64_t injectDegraded = 0; //!< transfers run degraded
    Tick injectDegradedBusyPs = 0;    //!< union of degraded windows
    double injectDegradedShare = 0;   //!< degraded / pcie busy
};

/** Fold @p trace into per-resource metrics. */
TraceMetrics computeTraceMetrics(const Tracer &trace);

/** Flat `metric,key,value` CSV — stable row order, golden-friendly. */
void writeTraceMetricsCsv(std::ostream &os, const TraceMetrics &m);

/** Human-readable table for the CLI's --metrics flag. */
std::string traceMetricsTable(const TraceMetrics &m);

} // namespace uvmasync

#endif // UVMASYNC_TRACE_METRICS_HH
