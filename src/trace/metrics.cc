#include "trace/metrics.hh"

#include <algorithm>
#include <cstdio>

#include "common/csv.hh"
#include "common/table.hh"

namespace uvmasync
{

namespace
{

struct Interval
{
    Tick start;
    Tick end;
};

/** Union length of possibly-overlapping intervals; sorts in place. */
Tick
unionLength(std::vector<Interval> &iv)
{
    std::sort(iv.begin(), iv.end(), [](const auto &a, const auto &b) {
        return a.start < b.start || (a.start == b.start && a.end < b.end);
    });
    Tick total = 0;
    Tick curStart = 0, curEnd = 0;
    bool open = false;
    for (const Interval &i : iv) {
        if (open && i.start <= curEnd) {
            curEnd = std::max(curEnd, i.end);
            continue;
        }
        if (open)
            total += curEnd - curStart;
        curStart = i.start;
        curEnd = i.end;
        open = true;
    }
    if (open)
        total += curEnd - curStart;
    return total;
}

/** Coalesce to disjoint sorted intervals; sorts in place. */
std::vector<Interval>
coalesce(std::vector<Interval> iv)
{
    std::sort(iv.begin(), iv.end(), [](const auto &a, const auto &b) {
        return a.start < b.start || (a.start == b.start && a.end < b.end);
    });
    std::vector<Interval> out;
    for (const Interval &i : iv) {
        if (!out.empty() && i.start <= out.back().end)
            out.back().end = std::max(out.back().end, i.end);
        else
            out.push_back(i);
    }
    return out;
}

/** Total intersection length of two disjoint sorted interval lists. */
Tick
intersectionLength(const std::vector<Interval> &a,
                   const std::vector<Interval> &b)
{
    Tick total = 0;
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        const Tick lo = std::max(a[i].start, b[j].start);
        const Tick hi = std::min(a[i].end, b[j].end);
        if (hi > lo)
            total += hi - lo;
        if (a[i].end < b[j].end)
            ++i;
        else
            ++j;
    }
    return total;
}

std::size_t
batchBucket(std::uint64_t n)
{
    std::size_t bucket = 0;
    while (n > 1 && bucket + 1 < faultBatchBuckets) {
        n >>= 1;
        ++bucket;
    }
    return bucket;
}

std::string
fixed6(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

} // namespace

std::string
faultBatchBucketLabel(std::size_t i)
{
    if (i == 0)
        return "1";
    const std::uint64_t lo = 1ull << i;
    if (i + 1 == faultBatchBuckets)
        return ">=" + std::to_string(lo);
    return std::to_string(lo) + "-" + std::to_string(2 * lo - 1);
}

TraceMetrics
computeTraceMetrics(const Tracer &trace)
{
    TraceMetrics m;
    m.wallEndPs = trace.wallEnd();

    std::vector<std::vector<Interval>> laneSpans(trace.laneCount());
    std::vector<std::uint64_t> laneCounts(trace.laneCount(), 0);
    std::vector<Interval> pcieSpans, kernelSpans, degradedSpans;

    for (const TraceEvent &ev : trace.events()) {
        if (!ev.isInstant()) {
            laneSpans[ev.lane].push_back({ev.start, ev.end});
            ++laneCounts[ev.lane];
        }

        switch (ev.category) {
          case TraceCategory::Pcie:
            pcieSpans.push_back({ev.start, ev.end});
            m.pcieQueueWaitPs += ev.arg2;
            break;
          case TraceCategory::Fault:
            if (ev.name == TraceName::FaultRaise) {
                ++m.faultsRaised;
            } else if (ev.name == TraceName::FaultBatch) {
                ++m.faultBatches;
                ++m.faultBatchHist[batchBucket(ev.arg)];
            }
            break;
          case TraceCategory::Prefetch:
            if (ev.name == TraceName::PrefetchIssue)
                m.prefetchIssued += ev.arg;
            else if (ev.name == TraceName::PrefetchHit)
                ++m.prefetchHits;
            else if (ev.name == TraceName::PrefetchWaste)
                ++m.prefetchWasted;
            break;
          case TraceCategory::Phase:
            if (ev.name == TraceName::PhaseKernel && !ev.isInstant())
                kernelSpans.push_back({ev.start, ev.end});
            break;
          case TraceCategory::Inject:
            ++m.injectEvents;
            if (ev.name == TraceName::InjectRetry) {
                ++m.injectRetries;
                m.injectBackoffPs += ev.arg;
            } else if (ev.name == TraceName::InjectAbort) {
                ++m.injectAborts;
            } else if (ev.name == TraceName::InjectDegraded) {
                ++m.injectDegraded;
                degradedSpans.push_back({ev.start, ev.end});
            }
            break;
          default:
            break;
        }
    }

    for (std::size_t i = 0; i < laneSpans.size(); ++i) {
        LaneMetrics lm;
        lm.name = trace.laneNames()[i];
        lm.spans = laneCounts[i];
        lm.busyPs = unionLength(laneSpans[i]);
        lm.utilization = m.wallEndPs
                             ? static_cast<double>(lm.busyPs) /
                                   static_cast<double>(m.wallEndPs)
                             : 0.0;
        m.lanes.push_back(std::move(lm));
    }

    const auto pcie = coalesce(std::move(pcieSpans));
    const auto kernel = coalesce(std::move(kernelSpans));
    for (const Interval &i : pcie)
        m.pcieBusyPs += i.end - i.start;
    for (const Interval &i : kernel)
        m.kernelBusyPs += i.end - i.start;
    m.overlapPs = intersectionLength(pcie, kernel);
    m.overlapFraction = m.kernelBusyPs
                            ? static_cast<double>(m.overlapPs) /
                                  static_cast<double>(m.kernelBusyPs)
                            : 0.0;
    if (m.prefetchIssued) {
        m.prefetchAccuracy = static_cast<double>(m.prefetchHits) /
                             static_cast<double>(m.prefetchIssued);
    }
    m.injectDegradedBusyPs = unionLength(degradedSpans);
    if (m.pcieBusyPs) {
        m.injectDegradedShare =
            static_cast<double>(m.injectDegradedBusyPs) /
            static_cast<double>(m.pcieBusyPs);
    }
    return m;
}

void
writeTraceMetricsCsv(std::ostream &os, const TraceMetrics &m)
{
    CsvWriter csv(os);
    csv.writeRow({"metric", "key", "value"});
    csv.writeRow({"wall_end_ps", "", std::to_string(m.wallEndPs)});
    for (const LaneMetrics &lm : m.lanes) {
        csv.writeRow({"lane_busy_ps", lm.name,
                      std::to_string(lm.busyPs)});
        csv.writeRow({"lane_utilization", lm.name,
                      fixed6(lm.utilization)});
        csv.writeRow({"lane_spans", lm.name, std::to_string(lm.spans)});
    }
    csv.writeRow({"pcie_busy_ps", "", std::to_string(m.pcieBusyPs)});
    csv.writeRow({"pcie_queue_wait_ps", "",
                  std::to_string(m.pcieQueueWaitPs)});
    csv.writeRow({"faults_raised", "", std::to_string(m.faultsRaised)});
    csv.writeRow({"fault_batches", "", std::to_string(m.faultBatches)});
    for (std::size_t i = 0; i < faultBatchBuckets; ++i) {
        csv.writeRow({"fault_batch_hist", faultBatchBucketLabel(i),
                      std::to_string(m.faultBatchHist[i])});
    }
    csv.writeRow({"prefetch_issued", "",
                  std::to_string(m.prefetchIssued)});
    csv.writeRow({"prefetch_hits", "", std::to_string(m.prefetchHits)});
    csv.writeRow({"prefetch_wasted", "",
                  std::to_string(m.prefetchWasted)});
    csv.writeRow({"prefetch_accuracy", "", fixed6(m.prefetchAccuracy)});
    csv.writeRow({"kernel_busy_ps", "", std::to_string(m.kernelBusyPs)});
    csv.writeRow({"overlap_ps", "", std::to_string(m.overlapPs)});
    csv.writeRow({"overlap_fraction", "", fixed6(m.overlapFraction)});
    // Injection rows appear only when injection fired, so existing
    // (uninjected) golden CSVs stay byte-identical.
    if (m.injectEvents > 0) {
        csv.writeRow({"inject_events", "",
                      std::to_string(m.injectEvents)});
        csv.writeRow({"inject_retries", "",
                      std::to_string(m.injectRetries)});
        csv.writeRow({"inject_aborts", "",
                      std::to_string(m.injectAborts)});
        csv.writeRow({"inject_backoff_ps", "",
                      std::to_string(m.injectBackoffPs)});
        csv.writeRow({"inject_degraded_transfers", "",
                      std::to_string(m.injectDegraded)});
        csv.writeRow({"inject_degraded_busy_ps", "",
                      std::to_string(m.injectDegradedBusyPs)});
        csv.writeRow({"inject_degraded_share", "",
                      fixed6(m.injectDegradedShare)});
    }
}

std::string
traceMetricsTable(const TraceMetrics &m)
{
    TextTable table({"resource", "busy", "util", "spans"});
    for (const LaneMetrics &lm : m.lanes) {
        table.addRow({lm.name,
                      fmtTime(static_cast<double>(lm.busyPs)),
                      fmtPercent(lm.utilization),
                      std::to_string(lm.spans)});
    }
    table.addSeparator();
    table.addRow({"pcie queue wait",
                  fmtTime(static_cast<double>(m.pcieQueueWaitPs)), "",
                  ""});
    table.addRow({"faults / batches",
                  std::to_string(m.faultsRaised) + " / " +
                      std::to_string(m.faultBatches),
                  "", ""});
    table.addRow({"prefetch hit/issued",
                  std::to_string(m.prefetchHits) + " / " +
                      std::to_string(m.prefetchIssued),
                  fmtPercent(m.prefetchAccuracy), ""});
    table.addRow({"kernel/pcie overlap",
                  fmtTime(static_cast<double>(m.overlapPs)),
                  fmtPercent(m.overlapFraction), ""});
    if (m.injectEvents > 0) {
        table.addSeparator();
        table.addRow({"inject events",
                      std::to_string(m.injectEvents), "", ""});
        table.addRow({"inject retries/aborts",
                      std::to_string(m.injectRetries) + " / " +
                          std::to_string(m.injectAborts),
                      "", ""});
        table.addRow({"inject backoff",
                      fmtTime(static_cast<double>(m.injectBackoffPs)),
                      "", ""});
        table.addRow({"inject degraded busy",
                      fmtTime(static_cast<double>(
                          m.injectDegradedBusyPs)),
                      fmtPercent(m.injectDegradedShare), ""});
    }
    return table.toString();
}

} // namespace uvmasync
