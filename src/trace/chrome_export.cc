#include "trace/chrome_export.hh"

#include <cinttypes>
#include <cstdio>

namespace uvmasync
{

namespace
{

/**
 * Ticks are integer picoseconds; trace_event wants microseconds.
 * Emit a fixed-point "<us>.<6 digits>" string from integer math so
 * the output never depends on floating-point formatting.
 */
std::string
microseconds(Tick ps)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06" PRIu64,
                  ps / 1000000, ps % 1000000);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

void
writeEvent(std::ostream &os, const TraceEvent &ev, int pid,
           bool &first)
{
    if (!first)
        os << ",\n";
    first = false;

    os << "    {\"name\": \"" << traceNameStr(ev.name)
       << "\", \"cat\": \"" << traceCategoryName(ev.category)
       << "\", \"ph\": \"" << (ev.isInstant() ? 'i' : 'X')
       << "\", \"ts\": " << microseconds(ev.start);
    if (!ev.isInstant())
        os << ", \"dur\": " << microseconds(ev.duration());
    os << ", \"pid\": " << pid << ", \"tid\": 0";
    if (ev.isInstant())
        os << ", \"s\": \"t\"";

    os << ", \"args\": {\"arg\": " << ev.arg;
    if (ev.arg2 != 0)
        os << ", \"arg2\": " << ev.arg2;
    if (!ev.label.empty())
        os << ", \"label\": \"" << jsonEscape(ev.label) << "\"";
    os << "}}";
}

void
writeProcessName(std::ostream &os, int pid, const std::string &name,
                 bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
       << pid << ", \"tid\": 0, \"args\": {\"name\": \""
       << jsonEscape(name) << "\"}}";
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<ChromeTraceJob> &jobs)
{
    os << "{\n  \"displayTimeUnit\": \"ms\",\n"
       << "  \"traceEvents\": [\n";

    bool first = true;
    int pid = 1;
    for (const ChromeTraceJob &job : jobs) {
        const Tracer &trace = *job.trace;
        const int basePid = pid;
        for (const std::string &laneName : trace.laneNames()) {
            writeProcessName(os, pid, job.name + ":" + laneName,
                             first);
            ++pid;
        }
        // Per lane in id order, events in recording order — this is
        // also per-lane time order for spans, which viewers expect.
        for (std::uint32_t laneId = 0; laneId < trace.laneCount();
             ++laneId) {
            for (const TraceEvent &ev : trace.events()) {
                if (ev.lane == laneId)
                    writeEvent(os, ev, basePid + static_cast<int>(laneId),
                               first);
            }
        }
    }
    os << "\n  ]\n}\n";
}

void
writeChromeTrace(std::ostream &os, const Tracer &trace,
                 const std::string &jobName)
{
    writeChromeTrace(os, {ChromeTraceJob{jobName, &trace}});
}

} // namespace uvmasync
