/**
 * @file
 * Structural invariants of a recorded trace.
 *
 * These are the machine-checkable laws that every correct simulation
 * trace obeys, regardless of calibration:
 *
 *  - per lane, spans are recorded in non-decreasing start order
 *    (lanes model FCFS resources or forward-moving execution tracks);
 *  - per lane, spans nest properly: any two spans are either disjoint
 *    or one contains the other — a half-overlap means two occupants
 *    claimed the same resource window;
 *  - every event ends no later than the trace's wall end.
 *
 * Instants are exempt from ordering/nesting (a fault raise may land
 * inside the previous batch's service window by design). The property
 * suite runs this checker over every registry workload; it is cheap
 * enough to call after any traced run.
 */

#ifndef UVMASYNC_TRACE_TRACE_CHECK_HH
#define UVMASYNC_TRACE_TRACE_CHECK_HH

#include <string>
#include <vector>

#include "trace/trace.hh"

namespace uvmasync
{

/** Outcome of checkTrace(): ok, or the violations found. */
struct TraceCheckResult
{
    bool ok = true;

    /** Human-readable description of each violation. */
    std::vector<std::string> violations;

    /** First violation (empty when ok). */
    std::string first() const
    {
        return violations.empty() ? std::string() : violations.front();
    }
};

/** Verify the structural invariants above on @p trace. */
TraceCheckResult checkTrace(const Tracer &trace);

} // namespace uvmasync

#endif // UVMASYNC_TRACE_TRACE_CHECK_HH
