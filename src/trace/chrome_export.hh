/**
 * @file
 * Chrome trace_event JSON export.
 *
 * Writes the `{"traceEvents": [...]}` format that chrome://tracing
 * and Perfetto (ui.perfetto.dev) load directly. Every lane of every
 * job becomes its own pid with a `process_name` metadata record, so
 * the viewer shows one labelled track per simulated resource
 * ("saxpy/uvm:pcie.h2d", ...); spans are complete ("X") events and
 * instants are "i" events. Output is byte-deterministic: fixed-point
 * microsecond formatting from integer picoseconds, lanes in id
 * order, events in recording order.
 */

#ifndef UVMASYNC_TRACE_CHROME_EXPORT_HH
#define UVMASYNC_TRACE_CHROME_EXPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace uvmasync
{

/** One job's trace in a merged export. */
struct ChromeTraceJob
{
    std::string name;    //!< process-name prefix ("saxpy/uvm")
    const Tracer *trace; //!< borrowed; must outlive the export
};

/** Export several jobs into one trace file, pids in job order. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<ChromeTraceJob> &jobs);

/** Convenience: export a single trace under @p jobName. */
void writeChromeTrace(std::ostream &os, const Tracer &trace,
                      const std::string &jobName = "job");

} // namespace uvmasync

#endif // UVMASYNC_TRACE_CHROME_EXPORT_HH
