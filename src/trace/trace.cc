#include "trace/trace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace uvmasync
{

const char *
traceCategoryName(TraceCategory c)
{
    switch (c) {
      case TraceCategory::Sim: return "sim";
      case TraceCategory::Pcie: return "pcie";
      case TraceCategory::Fault: return "fault";
      case TraceCategory::Migration: return "migration";
      case TraceCategory::Prefetch: return "prefetch";
      case TraceCategory::Kernel: return "kernel";
      case TraceCategory::Phase: return "phase";
      case TraceCategory::Inject: return "inject";
    }
    panic("unknown trace category %d", static_cast<int>(c));
}

const char *
traceNameStr(TraceName n)
{
    switch (n) {
      case TraceName::EventDispatch: return "event_dispatch";
      case TraceName::PageableCopy: return "pageable_copy";
      case TraceName::PinnedCopy: return "pinned_copy";
      case TraceName::DemandMigration: return "demand_migration";
      case TraceName::BulkPrefetch: return "bulk_prefetch";
      case TraceName::Writeback: return "writeback";
      case TraceName::FaultRaise: return "fault_raise";
      case TraceName::FaultBatch: return "fault_batch";
      case TraceName::Evict: return "evict";
      case TraceName::PrefetchIssue: return "prefetch_issue";
      case TraceName::PrefetchHit: return "prefetch_hit";
      case TraceName::PrefetchWaste: return "prefetch_waste";
      case TraceName::PrefetchChurn: return "prefetch_churn";
      case TraceName::KernelLaunch: return "kernel_launch";
      case TraceName::TileCompute: return "tile_compute";
      case TraceName::AsyncFill: return "async_fill";
      case TraceName::DoubleBufferWait: return "double_buffer_wait";
      case TraceName::DataStall: return "data_stall";
      case TraceName::PhaseAlloc: return "alloc";
      case TraceName::PhaseTransferIn: return "transfer_in";
      case TraceName::PhaseKernel: return "kernel";
      case TraceName::PhaseTransferOut: return "transfer_out";
      case TraceName::PhaseFree: return "free";
      case TraceName::InjectDegraded: return "inject_degraded";
      case TraceName::InjectRetry: return "inject_retry";
      case TraceName::InjectAbort: return "inject_abort";
      case TraceName::InjectBatchDelay: return "inject_batch_delay";
      case TraceName::InjectBatchOverflow:
        return "inject_batch_overflow";
      case TraceName::InjectBackpressure:
        return "inject_backpressure";
      case TraceName::InjectEvictStorm: return "inject_evict_storm";
      case TraceName::InjectSlowPage: return "inject_slow_page";
      case TraceName::InjectLaunchJitter:
        return "inject_launch_jitter";
      case TraceName::WatchdogTrip: return "watchdog_trip";
      case TraceName::JournalCommit: return "journal_commit";
    }
    panic("unknown trace name %d", static_cast<int>(n));
}

std::uint32_t
Tracer::lane(const std::string &name)
{
    // Linear scan: a job uses well under a dozen lanes and most
    // callers cache the id once per run.
    for (std::size_t i = 0; i < laneNames_.size(); ++i) {
        if (laneNames_[i] == name)
            return static_cast<std::uint32_t>(i);
    }
    laneNames_.push_back(name);
    return static_cast<std::uint32_t>(laneNames_.size() - 1);
}

std::uint32_t
Tracer::findLane(const std::string &name) const
{
    for (std::size_t i = 0; i < laneNames_.size(); ++i) {
        if (laneNames_[i] == name)
            return static_cast<std::uint32_t>(i);
    }
    return static_cast<std::uint32_t>(laneNames_.size());
}

void
Tracer::span(TraceCategory c, TraceName n, std::uint32_t lane,
             Tick start, Tick end, std::uint64_t arg,
             std::uint64_t arg2, std::string label)
{
    UVMASYNC_ASSERT(end >= start,
                    "trace span '%s' ends before it starts",
                    traceNameStr(n));
    UVMASYNC_ASSERT(lane < laneNames_.size(),
                    "trace span '%s' on unregistered lane %u",
                    traceNameStr(n), lane);
    if (!enabled(c) || start == end)
        return;
    events_.push_back(TraceEvent{start, end, arg, arg2, lane, c, n,
                                 std::move(label)});
}

void
Tracer::instant(TraceCategory c, TraceName n, std::uint32_t lane,
                Tick when, std::uint64_t arg, std::string label)
{
    UVMASYNC_ASSERT(lane < laneNames_.size(),
                    "trace instant '%s' on unregistered lane %u",
                    traceNameStr(n), lane);
    if (!enabled(c))
        return;
    events_.push_back(TraceEvent{when, when, arg, 0, lane, c, n,
                                 std::move(label)});
}

Tick
Tracer::wallEnd() const
{
    Tick latest = 0;
    for (const TraceEvent &ev : events_)
        latest = std::max(latest, ev.end);
    return latest;
}

void
Tracer::clear()
{
    events_.clear();
    laneNames_.clear();
}

} // namespace uvmasync
