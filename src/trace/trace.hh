/**
 * @file
 * Span/counter tracer for the simulator's hot layers.
 *
 * Every instrumented component (event queue, PCIe link, fault
 * handler, migration engine, kernel executor, device phases) records
 * into one per-job Tracer through a raw pointer that is null when
 * tracing is off — the hook is a single predictable branch, so a
 * disabled trace costs nothing measurable. Events carry *stable*
 * category and name ids (the enum ordinals below are frozen; append
 * only), which keeps exported traces and golden files comparable
 * across builds.
 *
 * Two event shapes exist:
 *  - spans: a [start, end) window on a lane. Spans on one lane must
 *    be recorded in non-decreasing start order and nest properly
 *    (trace_check.hh verifies both); zero-length spans are dropped.
 *  - instants: a single tick. Instants are exempt from the ordering
 *    and nesting rules (fault raises can land inside a prior batch's
 *    service window).
 *
 * A lane is a time-shared resource or execution track ("pcie.h2d",
 * "gpu", ...); lanes are created on first use and identified by a
 * dense index, so recording never hashes or allocates per event
 * beyond the event vector itself.
 */

#ifndef UVMASYNC_TRACE_TRACE_HH
#define UVMASYNC_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/types.hh"

namespace uvmasync
{

/** Event category; frozen ordinals (append only). */
enum class TraceCategory : std::uint8_t
{
    Sim = 0,       //!< event-queue dispatch
    Pcie = 1,      //!< link occupancy windows
    Fault = 2,     //!< far-fault raise / batch servicing
    Migration = 3, //!< eviction and residency churn
    Prefetch = 4,  //!< speculation issue / hit / waste
    Kernel = 5,    //!< tile pipeline detail inside a launch
    Phase = 6,     //!< job phases (the Timeline lanes)
    Inject = 7,    //!< fault-injection perturbations
};

inline constexpr std::size_t numTraceCategories = 8;

/** Stable category slug ("pcie", "fault", ...). */
const char *traceCategoryName(TraceCategory c);

/** Bitmask with only @p c enabled. */
constexpr std::uint32_t
traceCategoryBit(TraceCategory c)
{
    return 1u << static_cast<std::uint32_t>(c);
}

/** All categories enabled. */
inline constexpr std::uint32_t traceAllCategories = 0xffffffffu;

/**
 * Stable span/instant name ids; frozen ordinals (append only). The
 * Pcie block mirrors TransferKind order so the mapping is a constant
 * offset.
 */
enum class TraceName : std::uint16_t
{
    // Sim
    EventDispatch = 0,
    // Pcie (order == TransferKind)
    PageableCopy = 10,
    PinnedCopy = 11,
    DemandMigration = 12,
    BulkPrefetch = 13,
    Writeback = 14,
    // Fault
    FaultRaise = 20,
    FaultBatch = 21,
    // Migration
    Evict = 30,
    // Prefetch
    PrefetchIssue = 40,
    PrefetchHit = 41,
    PrefetchWaste = 42,
    PrefetchChurn = 43,
    // Kernel
    KernelLaunch = 50,
    TileCompute = 51,
    AsyncFill = 52,
    DoubleBufferWait = 53,
    DataStall = 54,
    // Phase (order == PhaseKind)
    PhaseAlloc = 60,
    PhaseTransferIn = 61,
    PhaseKernel = 62,
    PhaseTransferOut = 63,
    PhaseFree = 64,
    // Inject
    InjectDegraded = 70,
    InjectRetry = 71,
    InjectAbort = 72,
    InjectBatchDelay = 73,
    InjectBatchOverflow = 74,
    InjectBackpressure = 75,
    InjectEvictStorm = 76,
    InjectSlowPage = 77,
    InjectLaunchJitter = 78,
    // Robustness (watchdog trips, journal commits)
    WatchdogTrip = 80,
    JournalCommit = 81,
};

/** Stable name slug ("fault_batch", "tile_compute", ...). */
const char *traceNameStr(TraceName n);

/** One recorded span or instant. */
struct TraceEvent
{
    Tick start = 0;
    Tick end = 0;           //!< == start for instants
    std::uint64_t arg = 0;  //!< payload (bytes, batch size, ps, ...)
    std::uint64_t arg2 = 0; //!< secondary payload (queue wait, ...)
    std::uint32_t lane = 0;
    TraceCategory category = TraceCategory::Sim;
    TraceName name = TraceName::EventDispatch;
    std::string label; //!< optional free-form detail ("h2d x")

    bool isInstant() const { return start == end; }
    Tick duration() const { return end - start; }
};

/**
 * Deterministic in-memory event collector. One Tracer belongs to one
 * job execution (never shared across threads); the parallel engine
 * gives every point its own Tracer and merges results in submission
 * order, so a traced `--jobs N` run stays byte-identical to serial.
 */
class Tracer
{
  public:
    Tracer() = default;

    /** Record only categories whose bit is set in @p mask. */
    void setCategoryFilter(std::uint32_t mask) { filter_ = mask; }
    std::uint32_t categoryFilter() const { return filter_; }

    bool
    enabled(TraceCategory c) const
    {
        return (filter_ & traceCategoryBit(c)) != 0;
    }

    /** Dense id of lane @p name, creating it on first use. */
    std::uint32_t lane(const std::string &name);

    /** Lane id if it exists, laneCount() otherwise. */
    std::uint32_t findLane(const std::string &name) const;

    const std::vector<std::string> &laneNames() const
    {
        return laneNames_;
    }
    std::size_t laneCount() const { return laneNames_.size(); }

    /**
     * Record a [start, end) span. Zero-length spans are dropped —
     * they carry no occupancy; callers that care about the *moment*
     * should record an instant instead (the Timeline exporter does).
     */
    void span(TraceCategory c, TraceName n, std::uint32_t lane,
              Tick start, Tick end, std::uint64_t arg = 0,
              std::uint64_t arg2 = 0, std::string label = {});

    /** Record a point event at @p when. */
    void instant(TraceCategory c, TraceName n, std::uint32_t lane,
                 Tick when, std::uint64_t arg = 0,
                 std::string label = {});

    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t eventCount() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /** Latest end tick across all events (0 when empty). */
    Tick wallEnd() const;

    /** Drop all events and lanes. */
    void clear();

  private:
    std::vector<TraceEvent> events_;
    std::vector<std::string> laneNames_;
    std::uint32_t filter_ = traceAllCategories;
};

/**
 * Compile-time no-op sink with the Tracer recording interface, for
 * contexts that select their sink statically (templated drivers,
 * benches). Every member is constexpr and the type is empty, so an
 * instrumented call site instantiated with NullTraceSink folds to
 * nothing — see test_trace.cc's static_asserts.
 */
struct NullTraceSink
{
    static constexpr bool enabled(TraceCategory) { return false; }

    static constexpr void
    span(TraceCategory, TraceName, std::uint32_t, Tick, Tick,
         std::uint64_t = 0, std::uint64_t = 0)
    {
    }

    static constexpr void
    instant(TraceCategory, TraceName, std::uint32_t, Tick,
            std::uint64_t = 0)
    {
    }
};

static_assert(std::is_empty_v<NullTraceSink>,
              "the no-op sink must carry no state");

} // namespace uvmasync

#endif // UVMASYNC_TRACE_TRACE_HH
