#include "trace/trace_check.hh"

#include <cstdio>
#include <vector>

namespace uvmasync
{

namespace
{

std::string
describe(const Tracer &trace, const TraceEvent &ev)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s/%s [%llu, %llu) on lane %s",
                  traceCategoryName(ev.category),
                  traceNameStr(ev.name),
                  static_cast<unsigned long long>(ev.start),
                  static_cast<unsigned long long>(ev.end),
                  trace.laneNames()[ev.lane].c_str());
    return buf;
}

} // namespace

TraceCheckResult
checkTrace(const Tracer &trace)
{
    TraceCheckResult res;
    auto fail = [&](std::string msg) {
        res.ok = false;
        res.violations.push_back(std::move(msg));
    };

    const Tick wall = trace.wallEnd();

    // Per-lane span state: last start seen (ordering) and the stack
    // of currently open enclosing spans (nesting). Spans arrive in
    // non-decreasing start order per lane, so a single forward pass
    // with a stack decides containment exactly.
    struct LaneState
    {
        Tick lastStart = 0;
        bool any = false;
        std::vector<Tick> openEnds;
    };
    std::vector<LaneState> lanes(trace.laneCount());

    for (const TraceEvent &ev : trace.events()) {
        if (ev.end > wall)
            fail("event past wall end: " + describe(trace, ev));
        if (ev.isInstant())
            continue;

        LaneState &lane = lanes[ev.lane];
        if (lane.any && ev.start < lane.lastStart) {
            fail("span starts before its lane predecessor: " +
                 describe(trace, ev));
            // Ordering is broken; the stack below would report
            // cascading noise for this lane, so resync.
            lane.openEnds.clear();
        }
        lane.lastStart = ev.start;
        lane.any = true;

        // Pop spans that ended before this one starts; what remains
        // open must fully contain the new span.
        while (!lane.openEnds.empty() &&
               lane.openEnds.back() <= ev.start)
            lane.openEnds.pop_back();
        if (!lane.openEnds.empty() && ev.end > lane.openEnds.back())
            fail("span half-overlaps an open span: " +
                 describe(trace, ev));
        lane.openEnds.push_back(ev.end);
    }
    return res;
}

} // namespace uvmasync
