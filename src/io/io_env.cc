#include "io/io_env.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

namespace uvmasync
{

std::string
IoStatus::text() const
{
    if (ok)
        return "ok";
    return std::strerror(err);
}

namespace
{

/** Buffered stdio file; fsync via the underlying descriptor. */
class RealIoFile final : public IoFile
{
  public:
    explicit RealIoFile(std::FILE *file) : file_(file) {}

    ~RealIoFile() override
    {
        // Destructor close is best-effort by contract: flush errors
        // here must never fatal (we may be unwinding) — callers that
        // care about durability call close()/sync() explicitly.
        if (file_)
            std::fclose(file_);
    }

    IoStatus
    write(const void *data, std::size_t len) override
    {
        if (!file_)
            return IoStatus::failure(EBADF);
        if (std::fwrite(data, 1, len, file_) != len)
            return IoStatus::failure(errno != 0 ? errno : EIO);
        return IoStatus::good();
    }

    IoStatus
    flush() override
    {
        if (!file_)
            return IoStatus::failure(EBADF);
        if (std::fflush(file_) != 0)
            return IoStatus::failure(errno != 0 ? errno : EIO);
        return IoStatus::good();
    }

    IoStatus
    sync() override
    {
        if (!file_)
            return IoStatus::failure(EBADF);
        if (std::fflush(file_) != 0)
            return IoStatus::failure(errno != 0 ? errno : EIO);
        if (::fsync(fileno(file_)) != 0)
            return IoStatus::failure(errno != 0 ? errno : EIO);
        return IoStatus::good();
    }

    IoStatus
    close() override
    {
        if (!file_)
            return IoStatus::good();
        std::FILE *f = file_;
        file_ = nullptr;
        if (std::fclose(f) != 0)
            return IoStatus::failure(errno != 0 ? errno : EIO);
        return IoStatus::good();
    }

  private:
    std::FILE *file_ = nullptr;
};

std::unique_ptr<IoFile>
openMode(const std::string &path, const char *mode, IoStatus &st)
{
    std::FILE *f = std::fopen(path.c_str(), mode);
    if (!f) {
        st = IoStatus::failure(errno != 0 ? errno : EIO);
        return nullptr;
    }
    st = IoStatus::good();
    return std::make_unique<RealIoFile>(f);
}

} // namespace

IoStatus
IoEnv::writeFileDurable(const std::string &path,
                        const std::string &data)
{
    IoStatus st;
    std::unique_ptr<IoFile> file = openTrunc(path, st);
    if (!file)
        return st;
    st = file->write(data);
    if (st.ok)
        st = file->sync();
    IoStatus closed = file->close();
    if (st.ok)
        st = closed;
    return st;
}

IoStatus
IoEnv::writeFileAtomic(const std::string &path,
                       const std::string &data)
{
    std::string tmp = path + ".tmp";
    IoStatus st = writeFileDurable(tmp, data);
    if (!st.ok) {
        removeFile(tmp); // best effort — don't mask the write error
        return st;
    }
    st = renameFile(tmp, path);
    if (!st.ok)
        removeFile(tmp);
    return st;
}

std::unique_ptr<IoFile>
RealIoEnv::openTrunc(const std::string &path, IoStatus &st)
{
    return openMode(path, "wb", st);
}

std::unique_ptr<IoFile>
RealIoEnv::openAppend(const std::string &path, IoStatus &st)
{
    return openMode(path, "ab", st);
}

IoStatus
RealIoEnv::truncateFile(const std::string &path, std::uint64_t size)
{
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0)
        return IoStatus::failure(errno != 0 ? errno : EIO);
    return IoStatus::good();
}

IoStatus
RealIoEnv::readFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return IoStatus::failure(errno != 0 ? errno : EIO);
    out.clear();
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    if (std::ferror(f)) {
        int err = errno != 0 ? errno : EIO;
        std::fclose(f);
        return IoStatus::failure(err);
    }
    std::fclose(f);
    return IoStatus::good();
}

bool
RealIoEnv::exists(const std::string &path)
{
    struct stat sb;
    return ::stat(path.c_str(), &sb) == 0;
}

IoStatus
RealIoEnv::makeDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
        return IoStatus::failure(errno != 0 ? errno : EIO);
    return IoStatus::good();
}

IoStatus
RealIoEnv::renameFile(const std::string &from, const std::string &to)
{
    if (std::rename(from.c_str(), to.c_str()) != 0)
        return IoStatus::failure(errno != 0 ? errno : EIO);
    return IoStatus::good();
}

IoStatus
RealIoEnv::removeFile(const std::string &path)
{
    if (::unlink(path.c_str()) != 0)
        return IoStatus::failure(errno != 0 ? errno : EIO);
    return IoStatus::good();
}

IoStatus
RealIoEnv::listDir(const std::string &path,
                   std::vector<std::string> &names)
{
    names.clear();
    DIR *dir = ::opendir(path.c_str());
    if (!dir)
        return IoStatus::failure(errno != 0 ? errno : EIO);
    while (struct dirent *entry = ::readdir(dir)) {
        std::string name = entry->d_name;
        if (name == "." || name == "..")
            continue;
        names.push_back(std::move(name));
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
    return IoStatus::good();
}

IoEnv &
realIoEnv()
{
    static RealIoEnv env;
    return env;
}

} // namespace uvmasync
