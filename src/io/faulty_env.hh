/**
 * @file
 * Deterministic fault-injecting IoEnv, the persistence-layer twin of
 * the PR 4 simulation injector: every fault decision is derived from
 * (plan seed, operation counter) through the same splitmix64 salt
 * scheme, so a fault run is exactly reproducible and two runs with
 * the same plan fail the same byte of the same operation.
 *
 * The crash-consistency enumerator uses it in two passes: a counting
 * pass with an empty plan (no faults) records how many fault-eligible
 * operations a workload performs, then one run per operation index
 * fails exactly that operation and asserts the recovery invariants.
 *
 * Fault kinds:
 *  - failAtOp: the Nth fault-eligible operation fails with failErrno;
 *    a failing write may first push a salt-derived prefix of its
 *    payload through to the inner env (a realistic short write that
 *    leaves a torn tail on disk).
 *  - enospcAfterBytes: cumulative written bytes are capped; the write
 *    that crosses the cap is truncated at the cap and fails ENOSPC,
 *    as do all later writes (a full disk stays full).
 *  - failSyncs: every sync() fails with EIO after the flush — data
 *    may be in the page cache but durability was never promised.
 *  - powerCut: the env tracks, per file, how many bytes were made
 *    durable by the last successful sync; powerCut() then truncates
 *    every tracked file to its durable prefix plus a salt-derived
 *    portion of the unsynced suffix, emulating a power loss that
 *    drops an arbitrary amount of un-fsync'd data.
 */

#ifndef UVMASYNC_IO_FAULTY_ENV_HH
#define UVMASYNC_IO_FAULTY_ENV_HH

#include <cerrno>
#include <cstdint>
#include <map>
#include <mutex>

#include "io/io_env.hh"

namespace uvmasync
{

/** What to break, and when. Default-constructed = inert. */
struct IoFaultPlan {
    static constexpr std::uint64_t noByteLimit = ~0ull;

    /** Salt for every derived decision (prefix lengths, cut sizes). */
    std::uint64_t seed = 0;

    /** 1-based index of the fault-eligible op to fail; 0 = never. */
    std::uint64_t failAtOp = 0;

    /** errno injected at failAtOp. */
    int failErrno = EIO;

    /** Cumulative write-byte budget before ENOSPC; noByteLimit = off. */
    std::uint64_t enospcAfterBytes = noByteLimit;

    /** Fail every sync() with EIO (flush happens, durability lies). */
    bool failSyncs = false;

    /** Let a failing write leave a salt-derived partial prefix. */
    bool shortWrites = true;

    /** Track unsynced bytes per file so powerCut() can drop them. */
    bool powerCut = false;
};

/** Observed-operation counters (all monotone, never reset). */
struct IoFaultStats {
    std::uint64_t ops = 0;            ///< fault-eligible operations
    std::uint64_t writes = 0;         ///< write() calls
    std::uint64_t syncs = 0;          ///< sync() calls
    std::uint64_t injectedFailures = 0;
    std::uint64_t bytesWritten = 0;   ///< bytes reaching the inner env
    std::uint64_t shortWriteBytes = 0;///< partial bytes before a fail
    std::uint64_t powerCutDropped = 0;///< bytes dropped by powerCut()
};

/** The salt for op @p op under @p seed (splitmix64 finalizer mix). */
std::uint64_t ioFaultSalt(std::uint64_t seed, std::uint64_t op);

/**
 * Wraps an inner env (usually realIoEnv()) and injects the plan's
 * faults. Thread-safe; the operation counter is a single global
 * sequence across all files, which is what makes the enumerator's
 * counting pass meaningful.
 */
class FaultyIoEnv : public IoEnv
{
  public:
    explicit FaultyIoEnv(IoFaultPlan plan,
                         IoEnv &inner = realIoEnv());
    ~FaultyIoEnv() override;

    std::unique_ptr<IoFile> openTrunc(const std::string &path,
                                      IoStatus &st) override;
    std::unique_ptr<IoFile> openAppend(const std::string &path,
                                       IoStatus &st) override;
    IoStatus truncateFile(const std::string &path,
                          std::uint64_t size) override;
    IoStatus readFile(const std::string &path,
                      std::string &out) override;
    bool exists(const std::string &path) override;
    IoStatus makeDir(const std::string &path) override;
    IoStatus renameFile(const std::string &from,
                        const std::string &to) override;
    IoStatus removeFile(const std::string &path) override;
    IoStatus listDir(const std::string &path,
                     std::vector<std::string> &names) override;

    /**
     * Emulate a power loss: truncate every tracked file to its
     * durable (synced) prefix plus a salt-derived share of whatever
     * was written but never synced. Only meaningful with
     * plan.powerCut; call after the layer under test is destroyed.
     * Returns the number of bytes dropped.
     */
    std::uint64_t powerCut();

    const IoFaultStats &stats() const { return stats_; }

    /** Fault-eligible ops so far (the counting pass reads this). */
    std::uint64_t opCount() const { return stats_.ops; }

  private:
    friend class FaultyIoFile;

    /** Per-file durability tracking for powerCut mode. */
    struct FileTrack {
        std::uint64_t durable = 0; ///< bytes safe after last sync
        std::uint64_t written = 0; ///< bytes pushed to the inner env
    };

    /**
     * Count one fault-eligible op; true (with the op's salt in
     * @p salt) when the plan says this one fails.
     */
    bool nextOpFails(std::uint64_t &salt);

    /** Bookkeeping for bytes that reached the inner env. */
    void noteWritten(const std::string &path, std::uint64_t len,
                     bool partial);

    /** Advance the per-file durable watermark after a good sync. */
    void noteSynced(const std::string &path);

    IoFaultPlan plan_;
    IoEnv &inner_;
    std::mutex mutex_;
    IoFaultStats stats_;
    std::map<std::string, FileTrack> tracks_;
};

} // namespace uvmasync

#endif // UVMASYNC_IO_FAULTY_ENV_HH
