/**
 * @file
 * `uvmasync fsck`: offline deep verification (and repair) of the
 * durable state the journal, the result store, and the campaign
 * daemon leave on disk.
 *
 * One fsckPath() call auto-detects what a path holds and runs every
 * applicable check:
 *
 *  - a daemon state directory (has batches/): each batch's payload
 *    must parse, its journal header must be byte-identical to the
 *    header the payload's point grid produces, every record must
 *    parse with an in-range point index and the matching config
 *    hash, a torn tail is flagged, orphaned journals/markers without
 *    a payload are flagged, handle-sequence gaps and
 *    cancelled-but-complete contradictions are noted;
 *  - a result-store directory (has meta.json or shards/): meta must
 *    parse, every segment header must match its shard, every record
 *    must pass its checksum, torn tails are flagged;
 *  - a standalone journal file: header shape, record parse, index
 *    bounds against the header's point count, torn tail.
 *
 * With FsckOptions::repair the repairable findings are fixed in
 * place: torn tails are truncated back to the last intact line,
 * corrupt suffixes are truncated away (the clean prefix stays a
 * valid resumable journal), and unrecoverable files (bad headers,
 * unparseable payloads, orphans) are moved — never deleted — into a
 * quarantine/ subdirectory beside the damage.
 *
 * Exit-code contract (FsckReport::exitCode):
 *
 *   0  consistent — no findings beyond notes, or every damage
 *      finding was repaired this run;
 *   1  damage found (all of it repairable) and --repair not given;
 *   2  unrecoverable: unreadable state, an unrecognized path, or a
 *      repair action that itself failed.
 */

#ifndef UVMASYNC_IO_FSCK_HH
#define UVMASYNC_IO_FSCK_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/table.hh"
#include "io/io_env.hh"

namespace uvmasync
{

/** Weight of one finding (drives the exit code). */
enum class FsckSeverity
{
    Note,   //!< suspicious but consistent; never affects the exit
    Damage, //!< inconsistent, but a repair action exists
    Fatal,  //!< unrecoverable (or a repair attempt failed)
};

/** Stable severity slug ("note", "damage", "fatal"). */
const char *fsckSeverityName(FsckSeverity severity);

/** One verification finding. */
struct FsckFinding
{
    FsckSeverity severity = FsckSeverity::Damage;

    /** Layer that owns the invariant: "journal", "store", "serve". */
    std::string layer;

    /** File (or directory) the finding anchors to. */
    std::string path;

    /** What is wrong, with enough detail to act on. */
    std::string message;

    /** Set when --repair fixed this finding. */
    bool repaired = false;
};

/** How to run fsck. */
struct FsckOptions
{
    /** Truncate torn tails, quarantine unrecoverable files. */
    bool repair = false;
};

/** Everything one fsckPath() walk found (and did). */
struct FsckReport
{
    std::vector<FsckFinding> findings;

    std::size_t journalsChecked = 0; //!< journal files walked
    std::size_t storesChecked = 0;   //!< store directories walked
    std::size_t batchesChecked = 0;  //!< daemon batches walked
    std::size_t recordsChecked = 0;  //!< record lines parsed
    std::size_t repairsApplied = 0;  //!< findings fixed in place
    std::size_t quarantined = 0;     //!< files moved to quarantine/

    /** No findings at all (notes included). */
    bool clean() const { return findings.empty(); }

    /** The documented 0/1/2 contract (see file comment). */
    int exitCode() const;
};

/**
 * Verify (and with opt.repair, fix) the state at @p path — a daemon
 * state directory, a store directory, or a single journal file,
 * auto-detected. Never fatals: problems, including an unusable path,
 * become findings.
 */
FsckReport fsckPath(const std::string &path,
                    const FsckOptions &opt = {},
                    IoEnv &env = realIoEnv());

/** Render the summary counters (the `uvmasync fsck` footer). */
TextTable fsckSummaryTable(const FsckReport &report);

/** One finding as a stable single-line rendering. */
std::string fsckFindingLine(const FsckFinding &finding);

} // namespace uvmasync

#endif // UVMASYNC_IO_FSCK_HH
