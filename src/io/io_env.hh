/**
 * @file
 * Virtual-file-system seam for every durable-state write the system
 * makes. The journal (src/journal), the result store (src/store),
 * and the campaign daemon (src/serve) route ALL file I/O — open,
 * write, sync, truncate, rename, unlink, read, list — through an
 * IoEnv instead of calling libc directly, so a test can substitute a
 * deterministic fault-injecting environment (FaultyIoEnv) and fail
 * any single operation, run out of space mid-append, or cut power
 * with unsynced bytes in flight.
 *
 * Results are errno-faithful: every operation returns an IoStatus
 * carrying the errno a real syscall produced (or the one a fault
 * plan injected), never a fatal(). Callers own the policy — degrade,
 * quarantine, or surface the error — which is what lets a failed
 * write demote a run instead of killing it.
 *
 * The default RealIoEnv is a zero-overhead passthrough to the same
 * fopen/fwrite/fsync calls the layers used to make directly; the
 * determinism lint bans raw file I/O in the three durable-state
 * directories so this seam cannot silently rot.
 */

#ifndef UVMASYNC_IO_IO_ENV_HH
#define UVMASYNC_IO_IO_ENV_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace uvmasync
{

/** Outcome of one I/O operation; err holds errno when !ok. */
struct IoStatus {
    bool ok = true;
    int err = 0;

    static IoStatus good() { return IoStatus{}; }
    static IoStatus failure(int e) { return IoStatus{false, e}; }

    explicit operator bool() const { return ok; }

    /** strerror(err), or "ok" when the operation succeeded. */
    std::string text() const;
};

/**
 * An open writable file. write() appends at the current position;
 * sync() makes everything written so far durable. close() is
 * idempotent and reports flush failures; the destructor closes
 * silently and NEVER fatals — a guarantee the crash-consistency
 * enumerator's death tests pin down (a fatal during stack unwinding
 * would std::terminate the process).
 */
class IoFile
{
  public:
    virtual ~IoFile() = default;

    virtual IoStatus write(const void *data, std::size_t len) = 0;

    IoStatus
    write(const std::string &data)
    {
        return write(data.data(), data.size());
    }

    /**
     * Flush userspace buffers to the kernel (no fsync): bytes
     * survive a process kill but not a power cut. The store's
     * per-record contract.
     */
    virtual IoStatus flush() = 0;

    /** Flush userspace buffers and fsync to the device. */
    virtual IoStatus sync() = 0;

    /** Flush and close; safe to call twice. */
    virtual IoStatus close() = 0;
};

/**
 * The environment: file-system primitives with errno-faithful
 * results. Implementations must be thread-safe (the daemon writes
 * batch state from multiple threads).
 */
class IoEnv
{
  public:
    virtual ~IoEnv() = default;

    /** Open for writing, truncating any existing file. */
    virtual std::unique_ptr<IoFile>
    openTrunc(const std::string &path, IoStatus &st) = 0;

    /** Open for appending at the end; creates the file if missing. */
    virtual std::unique_ptr<IoFile>
    openAppend(const std::string &path, IoStatus &st) = 0;

    /** Shrink (or extend) a closed file to exactly @p size bytes. */
    virtual IoStatus truncateFile(const std::string &path,
                                  std::uint64_t size) = 0;

    /** Read a whole file into @p out. */
    virtual IoStatus readFile(const std::string &path,
                              std::string &out) = 0;

    /** True when @p path names an existing file or directory. */
    virtual bool exists(const std::string &path) = 0;

    /** mkdir; an already-existing directory is success. */
    virtual IoStatus makeDir(const std::string &path) = 0;

    /** Atomically rename @p from over @p to. */
    virtual IoStatus renameFile(const std::string &from,
                                const std::string &to) = 0;

    /** Unlink one file. */
    virtual IoStatus removeFile(const std::string &path) = 0;

    /**
     * Entry names in @p path (no "." / ".."), sorted so iteration
     * order is deterministic across filesystems.
     */
    virtual IoStatus listDir(const std::string &path,
                             std::vector<std::string> &names) = 0;

    /** @{
     * Conveniences composed from the primitives above (and therefore
     * automatically fault-injectable).
     */

    /** open + write + sync + close: durable once this returns ok. */
    IoStatus writeFileDurable(const std::string &path,
                              const std::string &data);

    /**
     * Write-to-temp + rename: readers see either the old file or the
     * complete new one, never a torn intermediate.
     */
    IoStatus writeFileAtomic(const std::string &path,
                             const std::string &data);
    /** @} */
};

/** The passthrough environment over the real filesystem. */
class RealIoEnv : public IoEnv
{
  public:
    std::unique_ptr<IoFile> openTrunc(const std::string &path,
                                      IoStatus &st) override;
    std::unique_ptr<IoFile> openAppend(const std::string &path,
                                       IoStatus &st) override;
    IoStatus truncateFile(const std::string &path,
                          std::uint64_t size) override;
    IoStatus readFile(const std::string &path,
                      std::string &out) override;
    bool exists(const std::string &path) override;
    IoStatus makeDir(const std::string &path) override;
    IoStatus renameFile(const std::string &from,
                        const std::string &to) override;
    IoStatus removeFile(const std::string &path) override;
    IoStatus listDir(const std::string &path,
                     std::vector<std::string> &names) override;
};

/** Process-wide shared RealIoEnv (the default everywhere). */
IoEnv &realIoEnv();

} // namespace uvmasync

#endif // UVMASYNC_IO_IO_ENV_HH
