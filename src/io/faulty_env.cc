#include "io/faulty_env.hh"

#include <algorithm>
#include <cerrno>

#include "common/rng.hh"

namespace uvmasync
{

namespace
{

// splitmix64 finalizer — the same mix the injector's salt scheme and
// the journal's config hasher use.
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::uint64_t
ioFaultSalt(std::uint64_t seed, std::uint64_t op)
{
    return mix64(seed ^ mix64(op));
}

/**
 * A file handle whose write/sync/close go back through the owning
 * env's fault logic. Holds no lock between calls; every operation
 * takes the env mutex.
 */
class FaultyIoFile final : public IoFile
{
  public:
    FaultyIoFile(FaultyIoEnv &env, std::string path,
                 std::unique_ptr<IoFile> inner)
        : env_(env), path_(std::move(path)), inner_(std::move(inner))
    {
    }

    ~FaultyIoFile() override
    {
        // Silent best-effort close; never counts as a fault point
        // and never fatals (we may be unwinding).
        if (inner_)
            inner_->close();
    }

    IoStatus
    write(const void *data, std::size_t len) override
    {
        std::lock_guard<std::mutex> lock(env_.mutex_);
        if (!inner_)
            return IoStatus::failure(EBADF);
        ++env_.stats_.writes;
        std::uint64_t salt = 0;
        if (env_.nextOpFails(salt)) {
            // A realistic failed write may have pushed a prefix to
            // the device before erroring — leave that torn tail.
            if (env_.plan_.shortWrites && len > 0) {
                std::uint64_t keep = Rng(salt).uniformInt(len);
                if (keep > 0 && inner_->write(data, keep).ok)
                    env_.noteWritten(path_, keep, true);
            }
            return IoStatus::failure(env_.plan_.failErrno);
        }
        // ENOSPC budget: the crossing write is truncated at the cap.
        if (env_.plan_.enospcAfterBytes != IoFaultPlan::noByteLimit) {
            std::uint64_t used = env_.stats_.bytesWritten;
            std::uint64_t cap = env_.plan_.enospcAfterBytes;
            std::uint64_t allowed = cap > used ? cap - used : 0;
            if (len > allowed) {
                ++env_.stats_.injectedFailures;
                if (allowed > 0 &&
                    inner_->write(data, allowed).ok)
                    env_.noteWritten(path_, allowed, true);
                return IoStatus::failure(ENOSPC);
            }
        }
        IoStatus st = inner_->write(data, len);
        if (st.ok)
            env_.noteWritten(path_, len, false);
        return st;
    }

    IoStatus
    flush() override
    {
        std::lock_guard<std::mutex> lock(env_.mutex_);
        if (!inner_)
            return IoStatus::failure(EBADF);
        std::uint64_t salt = 0;
        if (env_.nextOpFails(salt))
            return IoStatus::failure(env_.plan_.failErrno);
        // Flushed-but-unsynced bytes stay below the durable
        // watermark: a power cut may still drop them.
        return inner_->flush();
    }

    IoStatus
    sync() override
    {
        std::lock_guard<std::mutex> lock(env_.mutex_);
        if (!inner_)
            return IoStatus::failure(EBADF);
        ++env_.stats_.syncs;
        std::uint64_t salt = 0;
        if (env_.nextOpFails(salt))
            return IoStatus::failure(env_.plan_.failErrno);
        if (env_.plan_.failSyncs) {
            // The device takes the flush but reports failure — the
            // durable watermark must NOT advance.
            ++env_.stats_.injectedFailures;
            inner_->sync();
            return IoStatus::failure(EIO);
        }
        IoStatus st = inner_->sync();
        if (st.ok)
            env_.noteSynced(path_);
        return st;
    }

    IoStatus
    close() override
    {
        std::lock_guard<std::mutex> lock(env_.mutex_);
        if (!inner_)
            return IoStatus::good();
        std::unique_ptr<IoFile> inner = std::move(inner_);
        std::uint64_t salt = 0;
        if (env_.nextOpFails(salt)) {
            inner->close(); // don't leak the descriptor
            return IoStatus::failure(env_.plan_.failErrno);
        }
        return inner->close();
    }

  private:
    FaultyIoEnv &env_;
    std::string path_;
    std::unique_ptr<IoFile> inner_;
};

FaultyIoEnv::FaultyIoEnv(IoFaultPlan plan, IoEnv &inner)
    : plan_(plan), inner_(inner)
{
}

FaultyIoEnv::~FaultyIoEnv() = default;

bool
FaultyIoEnv::nextOpFails(std::uint64_t &salt)
{
    ++stats_.ops;
    salt = ioFaultSalt(plan_.seed, stats_.ops);
    if (plan_.failAtOp != 0 && stats_.ops == plan_.failAtOp) {
        ++stats_.injectedFailures;
        return true;
    }
    return false;
}

void
FaultyIoEnv::noteWritten(const std::string &path, std::uint64_t len,
                         bool partial)
{
    stats_.bytesWritten += len;
    if (partial)
        stats_.shortWriteBytes += len;
    if (plan_.powerCut)
        tracks_[path].written += len;
}

void
FaultyIoEnv::noteSynced(const std::string &path)
{
    if (!plan_.powerCut)
        return;
    FileTrack &track = tracks_[path];
    track.durable = track.written;
}

std::unique_ptr<IoFile>
FaultyIoEnv::openTrunc(const std::string &path, IoStatus &st)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t salt = 0;
    if (nextOpFails(salt)) {
        st = IoStatus::failure(plan_.failErrno);
        return nullptr;
    }
    std::unique_ptr<IoFile> inner = inner_.openTrunc(path, st);
    if (!inner)
        return nullptr;
    if (plan_.powerCut)
        tracks_[path] = FileTrack{}; // truncated: nothing durable
    return std::make_unique<FaultyIoFile>(*this, path,
                                          std::move(inner));
}

std::unique_ptr<IoFile>
FaultyIoEnv::openAppend(const std::string &path, IoStatus &st)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t salt = 0;
    if (nextOpFails(salt)) {
        st = IoStatus::failure(plan_.failErrno);
        return nullptr;
    }
    if (plan_.powerCut && tracks_.find(path) == tracks_.end()) {
        // First sight of a pre-existing file: its current bytes were
        // durable before this env came to life.
        std::string contents;
        std::uint64_t size =
            inner_.readFile(path, contents).ok ? contents.size() : 0;
        tracks_[path] = FileTrack{size, size};
    }
    std::unique_ptr<IoFile> inner = inner_.openAppend(path, st);
    if (!inner)
        return nullptr;
    return std::make_unique<FaultyIoFile>(*this, path,
                                          std::move(inner));
}

IoStatus
FaultyIoEnv::truncateFile(const std::string &path, std::uint64_t size)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t salt = 0;
    if (nextOpFails(salt))
        return IoStatus::failure(plan_.failErrno);
    IoStatus st = inner_.truncateFile(path, size);
    if (st.ok && plan_.powerCut) {
        FileTrack &track = tracks_[path];
        track.written = size;
        track.durable = std::min(track.durable, size);
    }
    return st;
}

IoStatus
FaultyIoEnv::readFile(const std::string &path, std::string &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t salt = 0;
    if (nextOpFails(salt))
        return IoStatus::failure(plan_.failErrno);
    return inner_.readFile(path, out);
}

bool
FaultyIoEnv::exists(const std::string &path)
{
    // Boolean probe with no error channel: never a fault point.
    return inner_.exists(path);
}

IoStatus
FaultyIoEnv::makeDir(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t salt = 0;
    if (nextOpFails(salt))
        return IoStatus::failure(plan_.failErrno);
    return inner_.makeDir(path);
}

IoStatus
FaultyIoEnv::renameFile(const std::string &from, const std::string &to)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t salt = 0;
    if (nextOpFails(salt))
        return IoStatus::failure(plan_.failErrno);
    IoStatus st = inner_.renameFile(from, to);
    if (st.ok && plan_.powerCut) {
        auto it = tracks_.find(from);
        if (it != tracks_.end()) {
            tracks_[to] = it->second;
            tracks_.erase(it);
        }
    }
    return st;
}

IoStatus
FaultyIoEnv::removeFile(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t salt = 0;
    if (nextOpFails(salt))
        return IoStatus::failure(plan_.failErrno);
    IoStatus st = inner_.removeFile(path);
    if (st.ok && plan_.powerCut)
        tracks_.erase(path);
    return st;
}

IoStatus
FaultyIoEnv::listDir(const std::string &path,
                     std::vector<std::string> &names)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t salt = 0;
    if (nextOpFails(salt))
        return IoStatus::failure(plan_.failErrno);
    return inner_.listDir(path, names);
}

std::uint64_t
FaultyIoEnv::powerCut()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t dropped = 0;
    std::uint64_t index = 0;
    for (auto &entry : tracks_) {
        FileTrack &track = entry.second;
        if (track.written <= track.durable)
            continue;
        std::uint64_t unsynced = track.written - track.durable;
        std::uint64_t salt =
            ioFaultSalt(plan_.seed ^ 0x9c7u, ++index);
        std::uint64_t keepExtra = Rng(salt).uniformInt(unsynced + 1);
        std::uint64_t keep = track.durable + keepExtra;
        if (inner_.truncateFile(entry.first, keep).ok) {
            dropped += track.written - keep;
            track.written = keep;
            track.durable = std::min(track.durable, keep);
        }
    }
    stats_.powerCutDropped += dropped;
    return dropped;
}

} // namespace uvmasync
