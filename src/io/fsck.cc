#include "io/fsck.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "journal/journal.hh"
#include "journal/json.hh"
#include "serve/batch_spec.hh"
#include "store/result_store.hh"

namespace uvmasync
{

namespace
{

/** Shared walk state: the env, the options, and the report. */
struct Ctx
{
    IoEnv &env;
    const FsckOptions &opt;
    FsckReport &report;
};

/**
 * Record one finding; returns its index (never hold a reference —
 * later findings reallocate the vector).
 */
std::size_t
addFinding(Ctx &ctx, FsckSeverity severity, const std::string &layer,
           const std::string &path, std::string message)
{
    FsckFinding finding;
    finding.severity = severity;
    finding.layer = layer;
    finding.path = path;
    finding.message = std::move(message);
    ctx.report.findings.push_back(std::move(finding));
    return ctx.report.findings.size() - 1;
}

void
markRepaired(Ctx &ctx, std::size_t finding)
{
    ctx.report.findings[finding].repaired = true;
    ++ctx.report.repairsApplied;
}

/** A repair step that itself failed: escalate to unrecoverable. */
void
repairFailed(Ctx &ctx, const std::string &layer,
             const std::string &path, const std::string &what,
             const IoStatus &st)
{
    addFinding(ctx, FsckSeverity::Fatal, layer, path,
               "repair failed: " + what + ": " + st.text());
}

std::string
baseName(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path
                                      : path.substr(slash + 1);
}

std::string
parentDir(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

/**
 * Move @p path into <root>/quarantine/ (never delete: the bytes may
 * still matter to a human). Marks @p finding repaired on success.
 */
void
quarantineFile(Ctx &ctx, const std::string &root,
               const std::string &path, std::size_t finding)
{
    std::string layer = ctx.report.findings[finding].layer;
    std::string qdir = root + "/quarantine";
    IoStatus st = ctx.env.makeDir(qdir);
    if (!st.ok) {
        repairFailed(ctx, layer, path,
                     "cannot create '" + qdir + "'", st);
        return;
    }
    std::string target = qdir + "/" + baseName(path);
    st = ctx.env.renameFile(path, target);
    if (!st.ok) {
        repairFailed(ctx, layer, path,
                     "cannot quarantine to '" + target + "'", st);
        return;
    }
    ++ctx.report.quarantined;
    markRepaired(ctx, finding);
}

/** Truncate @p path to @p size; marks @p finding repaired. */
void
truncateRepair(Ctx &ctx, const std::string &path, std::uint64_t size,
               std::size_t finding)
{
    std::string layer = ctx.report.findings[finding].layer;
    IoStatus st = ctx.env.truncateFile(path, size);
    if (!st.ok) {
        repairFailed(ctx, layer, path, "cannot truncate", st);
        return;
    }
    markRepaired(ctx, finding);
}

/**
 * Split @p contents into complete lines; a trailing fragment without
 * '\n' is a torn tail, reported with the offset to truncate to.
 */
std::vector<std::string>
splitLines(const std::string &contents, bool &tornTail,
           std::uint64_t &intactEnd)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < contents.size()) {
        std::size_t nl = contents.find('\n', start);
        if (nl == std::string::npos)
            break;
        lines.push_back(contents.substr(start, nl - start));
        start = nl + 1;
    }
    tornTail = start < contents.size();
    intactEnd = start;
    return lines;
}

/** What one journal walk learned (for cross-layer checks). */
struct JournalScan
{
    bool usable = false;          //!< header made sense
    std::size_t points = 0;       //!< grid size per the header
    std::size_t distinct = 0;     //!< distinct point indices recorded
};

/**
 * Verify one journal file. With @p points the header must be
 * byte-identical to journalHeaderLine(points) and every record's
 * config hash must match its point (the serve cross-layer check);
 * without, the header is validated structurally. Repairs: corrupt or
 * out-of-grid record suffixes and torn tails are truncated away
 * (the clean prefix stays a valid resumable journal); an unusable
 * header quarantines the whole file.
 */
JournalScan
checkJournalFile(Ctx &ctx, const std::string &root,
                 const std::string &path,
                 const std::vector<ExperimentPoint> *points,
                 const std::string &layer)
{
    JournalScan scan;
    ++ctx.report.journalsChecked;

    std::string contents;
    IoStatus rd = ctx.env.readFile(path, contents);
    if (!rd.ok) {
        addFinding(ctx, FsckSeverity::Fatal, layer, path,
                   "cannot read: " + rd.text());
        return scan;
    }

    bool tornTail = false;
    std::uint64_t intactEnd = 0;
    std::vector<std::string> lines =
        splitLines(contents, tornTail, intactEnd);

    if (lines.empty()) {
        std::size_t f = addFinding(
            ctx, FsckSeverity::Damage, layer, path,
            contents.empty() ? "empty journal (no header line)"
                             : "no intact header line (torn header)");
        if (ctx.opt.repair)
            quarantineFile(ctx, root, path, f);
        return scan;
    }

    // Header: exact bytes against the grid when we have one,
    // structural shape otherwise.
    std::vector<std::uint64_t> expectHashes;
    if (points) {
        if (lines[0] != journalHeaderLine(*points)) {
            std::size_t f = addFinding(
                ctx, FsckSeverity::Damage, layer, path,
                "journal header does not match the batch payload's "
                "point grid (campaign mismatch)");
            if (ctx.opt.repair)
                quarantineFile(ctx, root, path, f);
            return scan;
        }
        scan.points = points->size();
        expectHashes.reserve(points->size());
        for (const ExperimentPoint &point : *points)
            expectHashes.push_back(pointConfigHash(point));
    } else {
        JsonValue header;
        std::string error;
        std::uint64_t version = 0;
        std::uint64_t pointCount = 0;
        std::uint64_t campaign = 0;
        const JsonValue *magic = nullptr;
        const JsonValue *ver = nullptr;
        const JsonValue *camp = nullptr;
        const JsonValue *pts = nullptr;
        bool ok = parseJson(lines[0], header, error) &&
                  header.isObject() &&
                  (magic = header.find("journal")) != nullptr &&
                  magic->isString() && magic->text == "uvmasync" &&
                  (ver = header.find("version")) != nullptr &&
                  ver->asUint(version) && version == 1 &&
                  (camp = header.find("campaign")) != nullptr &&
                  camp->isString() &&
                  parseHexU64(camp->text, campaign) &&
                  (pts = header.find("points")) != nullptr &&
                  pts->asUint(pointCount);
        if (!ok) {
            std::size_t f = addFinding(
                ctx, FsckSeverity::Damage, layer, path,
                "not a journal header" +
                    (error.empty() ? "" : " (" + error + ")"));
            if (ctx.opt.repair)
                quarantineFile(ctx, root, path, f);
            return scan;
        }
        scan.points = static_cast<std::size_t>(pointCount);
    }
    scan.usable = true;

    // Records. On the first bad line the rest of the file cannot be
    // trusted (resume refuses it wholesale); the repair keeps the
    // clean prefix and truncates from the bad line on.
    std::uint64_t offset = lines[0].size() + 1;
    std::set<std::size_t> seen;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        ++ctx.report.recordsChecked;
        std::size_t index = 0;
        std::uint64_t configHash = 0;
        PointOutcome outcome;
        std::string error;
        std::string problem;
        if (!parseJournalRecord(lines[i], index, configHash, outcome,
                                error)) {
            problem = "corrupt record (" + error + ")";
        } else if (index >= scan.points) {
            problem = "records point " + std::to_string(index) +
                      " outside the " +
                      std::to_string(scan.points) + "-point grid";
        } else if (points && configHash != expectHashes[index]) {
            problem = "config hash of point " +
                      std::to_string(index) +
                      " does not match the batch payload";
        }
        if (!problem.empty()) {
            std::size_t dropped = lines.size() - i;
            std::size_t f = addFinding(
                ctx, FsckSeverity::Damage, layer, path,
                "line " + std::to_string(i + 1) + " " + problem +
                    "; " + std::to_string(dropped) +
                    " record(s) from there on are untrusted");
            if (ctx.opt.repair)
                truncateRepair(ctx, path, offset, f);
            return scan;
        }
        seen.insert(index);
        offset += lines[i].size() + 1;
    }
    scan.distinct = seen.size();

    if (tornTail) {
        std::size_t f = addFinding(
            ctx, FsckSeverity::Damage, layer, path,
            "torn trailing record (" +
                std::to_string(contents.size() - intactEnd) +
                " byte(s) past the last intact line)");
        if (ctx.opt.repair)
            truncateRepair(ctx, path, intactEnd, f);
    }
    return scan;
}

/** "sXX" (two lowercase hex digits) -> shard index. */
bool
shardIndexFromName(const std::string &name, std::size_t &shard)
{
    if (name.size() != 3 || name[0] != 's')
        return false;
    std::size_t value = 0;
    for (std::size_t i = 1; i < name.size(); ++i) {
        char c = name[i];
        if (c >= '0' && c <= '9')
            value = value * 16 + static_cast<std::size_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value =
                value * 16 + static_cast<std::size_t>(c - 'a' + 10);
        else
            return false;
    }
    shard = value;
    return true;
}

/**
 * Verify one result-store directory: meta.json parses, every segment
 * header matches its shard, every record passes its checksum, no
 * torn tails. Repair quarantines a copy of every damaged segment
 * (bad headers move wholesale), then runs gcStore() to rewrite the
 * survivors intact-records-only and persist a repaired meta.json.
 */
void
checkStoreDir(Ctx &ctx, const std::string &dir)
{
    ++ctx.report.storesChecked;
    const std::string layer = "store";

    // Meta: surveyStore owns the parse (shared with `store verify`).
    StoreSurvey survey;
    bool surveyed = false;
    try {
        FatalThrowScope fatalGuard;
        survey = surveyStore(dir, ctx.env);
        surveyed = true;
    } catch (const std::exception &e) {
        addFinding(ctx, FsckSeverity::Fatal, layer, dir, e.what());
    }
    constexpr std::size_t none = static_cast<std::size_t>(-1);
    std::size_t metaFinding = none;
    if (surveyed && !survey.metaOk) {
        metaFinding = addFinding(
            ctx, FsckSeverity::Damage, layer, dir + "/meta.json",
            survey.metaError.empty() ? "meta.json is unusable"
                                     : survey.metaError);
    }

    // Segments, one finding per file.
    std::vector<std::string> names;
    std::vector<std::size_t> rewriteFindings;
    bool needGc = false;
    if (!ctx.env.listDir(dir + "/shards", names).ok)
        names.clear(); // no shards directory = empty store
    for (const std::string &name : names) {
        std::size_t shard = 0;
        if (!shardIndexFromName(name, shard))
            continue;
        std::string path = dir + "/shards/" + name;
        std::string contents;
        IoStatus rd = ctx.env.readFile(path, contents);
        if (!rd.ok) {
            addFinding(ctx, FsckSeverity::Fatal, layer, path,
                       "cannot read: " + rd.text());
            continue;
        }
        bool tornTail = false;
        std::uint64_t intactEnd = 0;
        std::vector<std::string> lines =
            splitLines(contents, tornTail, intactEnd);

        if (lines.empty() ||
            lines[0] != storeSegmentHeaderLine(shard)) {
            std::size_t f = addFinding(
                ctx, FsckSeverity::Damage, layer, path,
                lines.empty() ? "segment has no intact header line"
                              : "segment header does not match "
                                "shard " +
                                    std::to_string(shard));
            if (ctx.opt.repair)
                quarantineFile(ctx, dir, path, f);
            continue;
        }

        std::size_t corrupt = 0;
        std::string firstError;
        for (std::size_t i = 1; i < lines.size(); ++i) {
            ++ctx.report.recordsChecked;
            std::uint64_t fp = 0;
            std::uint64_t key = 0;
            ExperimentResult result;
            std::string error;
            if (!parseStoreRecord(lines[i], fp, key, result,
                                  error)) {
                ++corrupt;
                if (firstError.empty())
                    firstError = "line " + std::to_string(i + 1) +
                                 ": " + error;
            }
        }
        if (corrupt > 0) {
            std::size_t f = addFinding(
                ctx, FsckSeverity::Damage, layer, path,
                std::to_string(corrupt) +
                    " record(s) fail checksum/parse (first: " +
                    firstError + ")");
            if (ctx.opt.repair) {
                // Preserve the damaged bytes before gcStore drops
                // the bad records from the live segment.
                IoStatus st = ctx.env.makeDir(dir + "/quarantine");
                if (st.ok)
                    st = ctx.env.writeFileDurable(
                        dir + "/quarantine/" + name, contents);
                if (!st.ok) {
                    repairFailed(ctx, layer, path,
                                 "cannot quarantine a copy", st);
                } else {
                    ++ctx.report.quarantined;
                    rewriteFindings.push_back(f);
                    needGc = true;
                }
            }
        }
        if (tornTail) {
            std::size_t f = addFinding(
                ctx, FsckSeverity::Damage, layer, path,
                "torn trailing record (" +
                    std::to_string(contents.size() - intactEnd) +
                    " byte(s) past the last intact line)");
            if (ctx.opt.repair) {
                rewriteFindings.push_back(f);
                needGc = true;
            }
        }
    }
    if (metaFinding != none && ctx.opt.repair)
        needGc = true;

    if (ctx.opt.repair && needGc) {
        // One rewrite pass drops what the findings flagged and
        // persists a consistent meta.json (`store gc` machinery).
        try {
            FatalThrowScope fatalGuard;
            gcStore(dir, 0, ctx.env);
            for (std::size_t f : rewriteFindings)
                markRepaired(ctx, f);
            if (metaFinding != none)
                markRepaired(ctx, metaFinding);
        } catch (const std::exception &e) {
            addFinding(ctx, FsckSeverity::Fatal, layer, dir,
                       std::string("repair failed: ") + e.what());
        }
    }
}

/**
 * Verify one daemon state directory: payloads parse, each batch
 * journal matches its payload's grid, markers/journals have owning
 * payloads, the handle sequence has no silent gaps, and a cancelled
 * marker does not contradict a fully-recorded batch.
 */
void
checkServeDir(Ctx &ctx, const std::string &stateDir)
{
    const std::string layer = "serve";
    std::string batchesDir = stateDir + "/batches";
    std::vector<std::string> names;
    IoStatus ls = ctx.env.listDir(batchesDir, names);
    if (!ls.ok) {
        addFinding(ctx, FsckSeverity::Fatal, layer, batchesDir,
                   "cannot list: " + ls.text());
        return;
    }

    std::set<std::uint64_t> payloads;
    std::set<std::uint64_t> journals;
    std::set<std::uint64_t> markers;
    for (const std::string &name : names) {
        std::uint64_t handle = 0;
        std::string ext =
            name.size() > 16 ? name.substr(16) : std::string();
        if (name.size() > 17 && name[16] == '.' &&
            parseHexU64(name.substr(0, 16), handle)) {
            if (ext == ".kv") {
                payloads.insert(handle);
                continue;
            }
            if (ext == ".jsonl") {
                journals.insert(handle);
                continue;
            }
            if (ext == ".cancelled") {
                markers.insert(handle);
                continue;
            }
        }
        addFinding(ctx, FsckSeverity::Note, layer,
                   batchesDir + "/" + name,
                   "unexpected file in the batches directory");
    }

    std::set<std::uint64_t> all;
    all.insert(payloads.begin(), payloads.end());
    all.insert(journals.begin(), journals.end());
    all.insert(markers.begin(), markers.end());

    for (std::uint64_t handle : all) {
        std::string stem = batchesDir + "/" + hexU64(handle);
        std::string payloadFile = stem + ".kv";
        std::string journalFile = stem + ".jsonl";
        std::string markerFile = stem + ".cancelled";

        if (!payloads.count(handle)) {
            // Journal/marker without a payload: recovery would never
            // look at them — dead state pinning a handle.
            for (const std::string &orphan :
                 {journalFile, markerFile}) {
                if (!ctx.env.exists(orphan))
                    continue;
                std::size_t f = addFinding(
                    ctx, FsckSeverity::Damage, layer, orphan,
                    "orphaned batch file: no payload for handle " +
                        hexU64(handle));
                if (ctx.opt.repair)
                    quarantineFile(ctx, stateDir, orphan, f);
            }
            continue;
        }

        ++ctx.report.batchesChecked;
        std::string payload;
        IoStatus rd = ctx.env.readFile(payloadFile, payload);
        if (!rd.ok) {
            addFinding(ctx, FsckSeverity::Fatal, layer, payloadFile,
                       "cannot read: " + rd.text());
            continue;
        }
        BatchSpec spec;
        std::string error;
        if (!parseBatchSpec(payload, spec, error)) {
            std::size_t f = addFinding(
                ctx, FsckSeverity::Damage, layer, payloadFile,
                "payload does not parse: " + error);
            if (ctx.opt.repair) {
                quarantineFile(ctx, stateDir, payloadFile, f);
                // Its journal and marker are meaningless without
                // the payload — quarantine them along.
                for (const std::string &extra :
                     {journalFile, markerFile}) {
                    if (!ctx.env.exists(extra))
                        continue;
                    std::size_t fe = addFinding(
                        ctx, FsckSeverity::Damage, layer, extra,
                        "batch file of a quarantined payload");
                    quarantineFile(ctx, stateDir, extra, fe);
                }
            }
            continue;
        }

        std::vector<ExperimentPoint> points = batchSpecPoints(spec);
        JournalScan scan;
        if (journals.count(handle))
            scan = checkJournalFile(ctx, stateDir, journalFile,
                                    &points, layer);

        if (markers.count(handle) && scan.usable &&
            !points.empty() && scan.distinct >= points.size()) {
            addFinding(ctx, FsckSeverity::Note, layer, markerFile,
                       "cancelled marker on a fully-recorded batch "
                       "(recovery will classify it cancelled)");
        }
    }

    // Handle-sequence gaps: handles are persisted sequence numbers,
    // so a hole means state went missing (or a submit failed after
    // allocating the handle) — worth a note, not damage.
    std::uint64_t prev = 0;
    bool first = true;
    for (std::uint64_t handle : payloads) {
        if (!first && handle > prev + 1) {
            addFinding(ctx, FsckSeverity::Note, layer, batchesDir,
                       "handle sequence gap between " +
                           hexU64(prev) + " and " + hexU64(handle));
        }
        prev = handle;
        first = false;
    }
}

} // namespace

const char *
fsckSeverityName(FsckSeverity severity)
{
    switch (severity) {
      case FsckSeverity::Note: return "note";
      case FsckSeverity::Damage: return "damage";
      case FsckSeverity::Fatal: return "fatal";
    }
    panic("unknown fsck severity %d", static_cast<int>(severity));
}

int
FsckReport::exitCode() const
{
    int code = 0;
    for (const FsckFinding &finding : findings) {
        if (finding.severity == FsckSeverity::Fatal)
            return 2;
        if (finding.severity == FsckSeverity::Damage &&
            !finding.repaired)
            code = std::max(code, 1);
    }
    return code;
}

FsckReport
fsckPath(const std::string &path, const FsckOptions &opt, IoEnv &env)
{
    FsckReport report;
    Ctx ctx{env, opt, report};

    if (!env.exists(path)) {
        addFinding(ctx, FsckSeverity::Fatal, "fsck", path,
                   "no such file or directory");
        return report;
    }

    std::vector<std::string> names;
    bool isDir = env.listDir(path, names).ok;
    if (!isDir) {
        checkJournalFile(ctx, parentDir(path), path, nullptr,
                         "journal");
        return report;
    }

    bool recognized = false;
    if (env.exists(path + "/batches")) {
        checkServeDir(ctx, path);
        recognized = true;
    }
    if (env.exists(path + "/meta.json") ||
        env.exists(path + "/shards")) {
        checkStoreDir(ctx, path);
        recognized = true;
    }
    if (!recognized) {
        addFinding(ctx, FsckSeverity::Fatal, "fsck", path,
                   "not a daemon state directory, a result store, "
                   "or a journal file");
    }
    return report;
}

TextTable
fsckSummaryTable(const FsckReport &report)
{
    std::size_t notes = 0;
    std::size_t damage = 0;
    std::size_t fatals = 0;
    for (const FsckFinding &finding : report.findings) {
        switch (finding.severity) {
          case FsckSeverity::Note: ++notes; break;
          case FsckSeverity::Damage: ++damage; break;
          case FsckSeverity::Fatal: ++fatals; break;
        }
    }
    TextTable table({"metric", "value"});
    auto row = [&](const char *name, std::uint64_t value) {
        table.addRow({name, std::to_string(value)});
    };
    row("journals_checked", report.journalsChecked);
    row("stores_checked", report.storesChecked);
    row("batches_checked", report.batchesChecked);
    row("records_checked", report.recordsChecked);
    table.addSeparator();
    row("notes", notes);
    row("damage", damage);
    row("fatal", fatals);
    row("repairs_applied", report.repairsApplied);
    row("quarantined", report.quarantined);
    return table;
}

std::string
fsckFindingLine(const FsckFinding &finding)
{
    std::string line = fsckSeverityName(finding.severity);
    line += " [";
    line += finding.layer;
    line += "] ";
    line += finding.path;
    line += ": ";
    line += finding.message;
    if (finding.repaired)
        line += " (repaired)";
    return line;
}

} // namespace uvmasync
