/**
 * @file
 * The paper's reported numbers, collected in one place so the bench
 * harness can print paper-vs-measured tables (EXPERIMENTS.md). All
 * values are fractions (0.21 = 21%). Positive improvement = faster
 * than standard; negative = slower.
 */

#ifndef UVMASYNC_CORE_PAPER_TARGETS_HH
#define UVMASYNC_CORE_PAPER_TARGETS_HH

namespace uvmasync
{
namespace paper
{

/** @{ Section 4.1.1, microbenchmarks, geomean over the 7 kernels. */
inline constexpr double microAsyncGainLarge = 0.0027;
inline constexpr double microAsyncGainSuper = 0.0036;
inline constexpr double microUvmGainLarge = -0.1679;
inline constexpr double microUvmGainSuper = -0.1323;
inline constexpr double microUvmPrefetchGainLarge = 0.0307;
inline constexpr double microUvmPrefetchGainSuper = 0.2840;
inline constexpr double microUvmPrefetchAsyncGainSuper = 0.2701;
/** uvm transfer-time savings vs standard. */
inline constexpr double microUvmTransferSavingLarge = 0.3146;
inline constexpr double microUvmTransferSavingSuper = 0.3519;
/** vector_seq async kernel-time reduction (Large). */
inline constexpr double vectorSeqAsyncKernelSaving = 0.4178;
/** 2DCONV async kernel-time increase (Large). */
inline constexpr double conv2dAsyncKernelIncrease = 1.4602;
/** gemm uvm_prefetch_async extra kernel time over standard. */
inline constexpr double gemmPrefetchAsyncKernelIncrease = 0.0786;
/** @} */

/** @{ Section 4.1.2, real-world applications (Super), geomean. */
inline constexpr double appsAsyncGain = 0.0281;
inline constexpr double appsUvmGain = -0.0441;
inline constexpr double appsUvmPrefetchGain = 0.2096;
inline constexpr double appsUvmPrefetchAsyncGain = 0.2252;
inline constexpr double appsUvmTransferSaving = 0.3270;
inline constexpr double appsUvmPrefetchTransferSaving = 0.6424;
inline constexpr double appsUvmPrefetchAsyncTransferSaving = 0.6418;
inline constexpr double appsUvmPrefetchKernelIncrease = 0.2750;
inline constexpr double appsUvmPrefetchAsyncKernelIncrease = 0.2172;
/** lud: async speedup over UVM (with prefetch), "up to 1.24x". */
inline constexpr double ludAsyncOverUvmSpeedup = 1.24;
/** 2DCONV best-case speedup over standard, "up to 2.63x". */
inline constexpr double conv2dBestSpeedup = 2.63;
/** @} */

/** @{ Section 4.2, performance counters. */
inline constexpr double gemmAsyncControlIncrease = 0.3998;
inline constexpr double yoloAsyncControlIncrease = 0.3013;
inline constexpr double ludAsyncLoadMissReduction = 0.3596;
inline constexpr double ludAsyncStoreMissReduction = 0.6999;
/** @} */

/** @{ Section 5 sensitivity studies (vector_seq). */
inline constexpr double blockSweepAsyncGain = 0.0277;
inline constexpr double blockSweepUvmPrefetchGain = 0.2134;
inline constexpr double blockSweepUvmPrefetchAsyncGain = 0.2238;
/** kernel time of 32 threads relative to 128 threads. */
inline constexpr double threads32Vs128KernelRatio = 3.95;
inline constexpr double asyncGain1024Threads = 0.0101;
inline constexpr double asyncGain32Threads = 0.1651;
/** @} */

/** @{ Section 6 discussion. */
inline constexpr double allocShareBefore = 0.1899;
inline constexpr double allocShareAfter = 0.3766;
inline constexpr double transferShareBefore = 0.5586;
inline constexpr double transferShareAfter = 0.2455;
inline constexpr double occupancyBefore = 0.2515;
inline constexpr double occupancyAfter = 0.3779;
inline constexpr double interJobModelGain = 0.30; // "more than 30%"
/** @} */

} // namespace paper
} // namespace uvmasync

#endif // UVMASYNC_CORE_PAPER_TARGETS_HH
