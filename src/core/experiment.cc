#include "core/experiment.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/parallel_runner.hh"
#include "runtime/noise_model.hh"
#include "workloads/registry.hh"

namespace uvmasync
{

TimeBreakdown
ExperimentResult::meanBreakdown() const
{
    TimeBreakdown sum;
    if (runs.empty())
        return clean;
    for (const TimeBreakdown &b : runs)
        sum += b;
    return sum * (1.0 / static_cast<double>(runs.size()));
}

SampleSet
ExperimentResult::overallSamples() const
{
    SampleSet set;
    for (const TimeBreakdown &b : runs)
        set.add(b.overallPs());
    return set;
}

Experiment::Experiment(SystemConfig system) : system_(system)
{
    registerAllWorkloads();
}

ExperimentResult
Experiment::run(const std::string &workloadName, TransferMode mode,
                const ExperimentOptions &opts)
{
    const Workload &workload =
        WorkloadRegistry::instance().get(workloadName);
    Job job = workload.makeJob(opts.size, opts.geometry);

    enforceLint(system_, job,
                workloadName + " @ " +
                    std::string(sizeClassName(opts.size)),
                opts.lint, nullptr, nullptr, &mode);

    Device device(system_);
    Tracer tracer;
    tracer.setCategoryFilter(opts.traceCategories);
    // The injector's streams derive only from (inject seed, point
    // seed), never from scheduling, so `--jobs N` replays an injected
    // batch byte-identically to serial.
    std::uint64_t injectSeed =
        opts.injectSeed ? opts.injectSeed : opts.inject.seed;
    Injector injector(opts.inject,
                      injectSalt(injectSeed, opts.baseSeed));
    RunOptions runOpts;
    runOpts.sharedCarveout = opts.sharedCarveout;
    runOpts.seed = opts.baseSeed;
    runOpts.tracer = opts.trace ? &tracer : nullptr;
    runOpts.injector = &injector;
    RunResult det = device.run(job, mode, runOpts);

    // The straddle check applies to the job's whole host footprint —
    // the paper's Mega effect appears when the job's data approaches
    // a single DRAM module's capacity (Section 3.3 / Figure 6).
    Bytes footprint = job.footprint();

    ExperimentResult res;
    res.workload = workloadName;
    res.mode = mode;
    res.size = opts.size;
    res.clean = det.breakdown;
    res.counters = det.counters;
    res.trace = std::move(tracer);
    res.injectCounters = injector.counters();
    res.runs.reserve(opts.runs);

    NoiseModel noise(system_.noise, device.hostMemory());
    for (std::uint32_t i = 0; i < opts.runs; ++i) {
        // One stream per (workload, run) — deliberately NOT per mode,
        // so the five configurations see the same machine conditions
        // in run i and small clean-value differences (async vs
        // standard) are not swamped by sampling error.
        std::uint64_t seed = opts.baseSeed;
        seed = seed * 1099511628211ull + std::hash<std::string>{}(
                                             workloadName);
        seed = seed * 1099511628211ull + i;
        Rng rng(seed);
        res.runs.push_back(
            noise.perturb(det.breakdown, footprint, rng));
    }
    return res;
}

std::vector<ExperimentResult>
Experiment::runAllModes(const std::string &workloadName,
                        const ExperimentOptions &opts)
{
    // Fan the five modes out through the parallel engine. Each point
    // keeps the cell's baseSeed unchanged (NOT a per-mode stream):
    // the noise model deliberately shares run-i machine conditions
    // across modes, and the engine's submission-order merge keeps the
    // output byte-identical to the serial loop this replaces.
    std::vector<ExperimentPoint> points;
    points.reserve(allTransferModes.size());
    for (TransferMode mode : allTransferModes)
        points.push_back(ExperimentPoint{workloadName, mode, opts});
    ParallelRunner runner(system_);
    BatchResult batch = runner.runPoints(points);

    // A failed mode degrades the set instead of killing it: its cell
    // keeps a zeroed placeholder and the caller sees a banner.
    if (batch.degraded()) {
        warn("DEGRADED RUN: %zu of %zu modes of '%s' quarantined; "
             "their cells hold zeroed placeholder results",
             batch.quarantined(), points.size(),
             workloadName.c_str());
        for (std::size_t i = 0; i < points.size(); ++i) {
            const PointOutcome &out = batch.points[i];
            if (!out.ok)
                warn("  %s/%s %s after %u attempt(s): %s",
                     points[i].workload.c_str(),
                     transferModeName(points[i].mode),
                     pointStatusName(out.status), out.attempts,
                     out.error.c_str());
        }
    }
    std::vector<ExperimentResult> results;
    results.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PointOutcome &out = batch.points[i];
        results.push_back(out.ok ? out.result
                                 : quarantinedPlaceholder(points[i]));
    }
    return results;
}

} // namespace uvmasync
