#include "core/parallel_runner.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/logging.hh"
#include "inject/injector.hh"
#include "sim/event_queue.hh"
#include "workloads/registry.hh"

namespace uvmasync
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** Stable 64-bit FNV-1a over a byte range (machine-independent). */
std::uint64_t
fnv1a(const void *data, std::size_t size,
      std::uint64_t h = 0xcbf29ce484222325ull)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/** splitmix64 finalizer: diffuses a hash into a full 64-bit seed. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** 0 means "not set"; resolved lazily in globalJobs(). */
std::atomic<unsigned> gGlobalJobs{0};

unsigned
autoJobs()
{
    if (const char *env = std::getenv("UVMASYNC_JOBS")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        warn("ignoring invalid UVMASYNC_JOBS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * Per-worker task queues with stealing. Workers pop from the back of
 * their own queue and steal from the front of the most loaded other
 * queue; a mutex per queue keeps the engine simple and TSan-clean.
 */
class StealingQueues
{
  public:
    explicit StealingQueues(unsigned workers) : queues_(workers) {}

    void
    push(unsigned worker, std::size_t index)
    {
        Queue &q = queues_[worker];
        std::lock_guard<std::mutex> lock(q.mutex);
        q.tasks.push_back(index);
    }

    /** Pop from the worker's own queue; false when empty. */
    bool
    popLocal(unsigned worker, std::size_t &index)
    {
        Queue &q = queues_[worker];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (q.tasks.empty())
            return false;
        index = q.tasks.back();
        q.tasks.pop_back();
        return true;
    }

    /** Steal from the front of another worker's queue. */
    bool
    steal(unsigned thief, std::size_t &index)
    {
        for (std::size_t off = 1; off < queues_.size(); ++off) {
            unsigned victim = static_cast<unsigned>(
                (thief + off) % queues_.size());
            Queue &q = queues_[victim];
            std::lock_guard<std::mutex> lock(q.mutex);
            if (q.tasks.empty())
                continue;
            index = q.tasks.front();
            q.tasks.pop_front();
            return true;
        }
        return false;
    }

  private:
    struct Queue
    {
        std::mutex mutex;
        std::deque<std::size_t> tasks;
    };

    std::vector<Queue> queues_;
};

} // namespace

unsigned
globalJobs()
{
    unsigned jobs = gGlobalJobs.load(std::memory_order_relaxed);
    return jobs > 0 ? jobs : autoJobs();
}

void
setGlobalJobs(unsigned jobs)
{
    gGlobalJobs.store(jobs, std::memory_order_relaxed);
}

const char *
pointStatusName(PointStatus status)
{
    switch (status) {
      case PointStatus::Ok: return "ok";
      case PointStatus::Aborted: return "aborted";
      case PointStatus::Timeout: return "timeout";
      case PointStatus::Failed: return "failed";
      case PointStatus::Quarantined: return "quarantined";
      case PointStatus::Cancelled: return "cancelled";
    }
    panic("unknown point status %d", static_cast<int>(status));
}

bool
BatchResult::allOk() const
{
    for (const PointOutcome &point : points) {
        if (!point.ok)
            return false;
    }
    return true;
}

std::size_t
BatchResult::quarantined() const
{
    std::size_t n = 0;
    for (const PointOutcome &point : points)
        n += point.ok ? 0 : 1;
    return n;
}

ExperimentResult
quarantinedPlaceholder(const ExperimentPoint &point)
{
    ExperimentResult res;
    res.workload = point.workload;
    res.mode = point.mode;
    res.size = point.opts.size;
    return res;
}

std::vector<ExperimentResult>
BatchResult::results() const
{
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!points[i].ok)
            throw std::runtime_error("experiment point " +
                                     std::to_string(i) + " failed: " +
                                     points[i].error);
    }
    std::vector<ExperimentResult> out;
    out.reserve(points.size());
    for (const PointOutcome &point : points)
        out.push_back(point.result);
    return out;
}

ParallelRunner::ParallelRunner(SystemConfig system, unsigned jobs)
    : system_(system), jobs_(jobs > 0 ? jobs : globalJobs())
{
    // Populate the registry on this thread before any worker runs, so
    // workers only ever read it.
    registerAllWorkloads();
}

std::uint64_t
ParallelRunner::pointSeed(std::uint64_t baseSeed,
                          const std::string &workload,
                          TransferMode mode, std::uint32_t trial)
{
    std::uint64_t h = fnv1a(&baseSeed, sizeof(baseSeed));
    h = fnv1a(workload.data(), workload.size(), h);
    std::uint64_t m = static_cast<std::uint64_t>(mode);
    h = fnv1a(&m, sizeof(m), h);
    std::uint64_t t = trial;
    h = fnv1a(&t, sizeof(t), h);
    return mix64(h);
}

std::vector<ExperimentPoint>
ParallelRunner::expandGrid(const std::vector<std::string> &workloads,
                           const std::vector<TransferMode> &modes,
                           std::uint32_t trials,
                           const ExperimentOptions &base)
{
    std::vector<ExperimentPoint> points;
    points.reserve(workloads.size() * modes.size() * trials);
    for (const std::string &workload : workloads) {
        for (TransferMode mode : modes) {
            for (std::uint32_t trial = 0; trial < trials; ++trial) {
                ExperimentPoint point;
                point.workload = workload;
                point.mode = mode;
                point.opts = base;
                point.opts.baseSeed =
                    pointSeed(base.baseSeed, workload, mode, trial);
                points.push_back(std::move(point));
            }
        }
    }
    return points;
}

BatchResult
ParallelRunner::runPoints(const std::vector<ExperimentPoint> &points)
{
    return runPoints(points, RunPolicy{});
}

BatchResult
ParallelRunner::runPoints(const std::vector<ExperimentPoint> &points,
                          const RunPolicy &policy)
{
    BatchResult batch;
    batch.points.resize(points.size());
    batch.metrics.points = points.size();
    if (points.empty()) {
        batch.metrics.jobs = 1;
        return batch;
    }

    // Restore journaled outcomes up front (before any worker spawns)
    // so the queues only ever hold live points.
    std::vector<char> live(points.size(), 1);
    if (policy.journal) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (policy.journal->restore(i, batch.points[i])) {
                batch.points[i].restored = true;
                live[i] = 0;
                ++batch.metrics.restored;
            }
        }
    }

    // Consult the cross-run result store for the remaining points,
    // in submission order on the calling thread: the cache's
    // hit/miss sequence (and any LRU bookkeeping it keeps) is a pure
    // function of the batch, never of worker scheduling. A journal
    // restore wins over a cache hit — it is this run's own record.
    if (policy.cache) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (!live[i])
                continue;
            if (policy.cache->lookup(i, batch.points[i])) {
                batch.points[i].cached = true;
                live[i] = 0;
                ++batch.metrics.cacheHits;
            }
        }
    }

    // Submission-order journal merge: a point's terminal record is
    // appended only once every earlier point has completed, so the
    // journal is byte-deterministic at any job count AND every
    // record on disk is a durable prefix of the batch — a crash
    // loses at most the in-flight suffix.
    std::mutex commitMutex;
    std::size_t frontier = 0;
    std::vector<char> done(points.size(), 0);
    auto completePoint = [&](std::size_t index) {
        if (!policy.journal && !policy.cache && !policy.onPointMerged)
            return;
        std::lock_guard<std::mutex> lock(commitMutex);
        done[index] = 1;
        while (frontier < points.size() && done[frontier]) {
            PointOutcome &out = batch.points[frontier];
            // A cache hit is journaled like a fresh result (it is
            // one, replayed), so warm and cold runs write identical
            // journals; a journal-restored point is not re-committed,
            // and a cancelled point is not committed at all — the
            // journal only ever holds real outcomes, so a cancelled
            // batch's journal is a clean prefix of completed points.
            if (policy.journal && !out.restored &&
                out.status != PointStatus::Cancelled &&
                !policy.journal->commit(frontier, out))
                ++batch.metrics.journalErrors;
            // Populate the store from the same submission-order
            // merge: segment append order is deterministic at any
            // job count. Only successful outcomes are cacheable —
            // aborted/timeout/quarantined points must re-run.
            if (policy.cache && out.ok && !out.cached)
                policy.cache->store(frontier, out);
            // Observers ride the merge too: the journal record (if
            // any) is durable by the time this fires, and indices
            // arrive in strict submission order at any job count.
            if (policy.onPointMerged)
                policy.onPointMerged(frontier, out);
            ++frontier;
        }
    };
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!live[i])
            completePoint(i);
    }

    // Never spin up more workers than there are live points.
    std::size_t liveCount = 0;
    for (char flag : live)
        liveCount += flag ? 1 : 0;
    unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
        jobs_, std::max<std::size_t>(liveCount, 1)));
    batch.metrics.jobs = workers;

    Clock::time_point submit = Clock::now();
    std::atomic<std::size_t> steals{0};

    // One point, on one worker's Experiment. All simulator state is
    // local to the Experiment/Device, so points are independent and
    // the outcome depends only on the point itself — never on which
    // worker or in which order it ran.
    auto runPoint = [&](Experiment &experiment,
                        const ExperimentPoint &point,
                        PointOutcome &outcome, unsigned worker,
                        bool stolen) {
        outcome.metrics.queueWaitMs = msSince(submit);
        outcome.metrics.worker = worker;
        outcome.metrics.stolen = stolen;
        Clock::time_point start = Clock::now();
        // Retries reuse the point's own seed: a deterministic
        // failure (poisoned config, doomed inject plan, watchdog
        // trip) fails identically every time and ends quarantined;
        // only host-side transients are actually saved.
        std::uint32_t maxAttempts = 1 + policy.retries;
        for (std::uint32_t attempt = 1; attempt <= maxAttempts;
             ++attempt) {
            // Cooperative cancel: checked before every attempt, so a
            // cancelled batch stops issuing new simulations but never
            // tears an in-flight one. Cancelled points are merged
            // (the frontier must still drain) but not journaled.
            if (policy.cancel &&
                policy.cancel->load(std::memory_order_acquire)) {
                outcome.ok = false;
                outcome.status = PointStatus::Cancelled;
                outcome.error = "batch cancelled";
                outcome.metrics.wallMs = msSince(start);
                return;
            }
            outcome.attempts = attempt;
            try {
                // A configuration that fatals (bad geometry,
                // malformed inject plan, ...), aborts an injected
                // transfer or trips a watchdog ceiling fails only
                // this point; siblings are untouched.
                FatalThrowScope fatalGuard;
                if (!WorkloadRegistry::instance().find(point.workload))
                    throw std::runtime_error("unknown workload '" +
                                             point.workload + "'");
                outcome.result = experiment.run(point.workload,
                                                point.mode,
                                                point.opts);
                outcome.ok = true;
                outcome.status = PointStatus::Ok;
                outcome.error.clear();
                break;
            } catch (const PointTimeout &e) {
                outcome.status = PointStatus::Timeout;
                outcome.error = e.what();
            } catch (const TransferAborted &e) {
                outcome.status = PointStatus::Aborted;
                outcome.error = e.what();
            } catch (const std::exception &e) {
                outcome.status = PointStatus::Failed;
                outcome.error = e.what();
            } catch (...) {
                outcome.status = PointStatus::Failed;
                outcome.error = "unknown error";
            }
            outcome.attemptTrail.push_back(
                PointAttempt{outcome.status, outcome.error});
        }
        if (!outcome.ok)
            outcome.status = PointStatus::Quarantined;
        outcome.metrics.wallMs = msSince(start);
    };

    if (workers <= 1) {
        Experiment experiment(system_);
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (!live[i])
                continue;
            runPoint(experiment, points[i], batch.points[i], 0,
                     false);
            completePoint(i);
        }
    } else {
        StealingQueues queues(workers);
        unsigned nextQueue = 0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (!live[i])
                continue;
            queues.push(nextQueue, i);
            nextQueue = (nextQueue + 1) % workers;
        }

        auto workerLoop = [&](unsigned worker) {
            Experiment experiment(system_);
            std::size_t index = 0;
            for (;;) {
                bool stolen = false;
                if (!queues.popLocal(worker, index)) {
                    if (!queues.steal(worker, index))
                        break;
                    stolen = true;
                    steals.fetch_add(1, std::memory_order_relaxed);
                }
                runPoint(experiment, points[index],
                         batch.points[index], worker, stolen);
                completePoint(index);
            }
        };

        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            threads.emplace_back(workerLoop, w);
        for (std::thread &t : threads)
            t.join();
    }

    batch.metrics.wallMs = msSince(submit);
    batch.metrics.steals = steals.load(std::memory_order_relaxed);
    for (const PointOutcome &outcome : batch.points)
        batch.metrics.busyMs += outcome.metrics.wallMs;
    if (batch.metrics.wallMs > 0.0) {
        batch.metrics.pointsPerSec =
            static_cast<double>(points.size()) /
            (batch.metrics.wallMs / 1e3);
    }
    return batch;
}

std::vector<ExperimentResult>
ParallelRunner::run(const std::vector<ExperimentPoint> &points)
{
    return runPoints(points).results();
}

} // namespace uvmasync
