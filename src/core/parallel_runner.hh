/**
 * @file
 * Parallel experiment engine with deterministic replay.
 *
 * A work-stealing thread pool over independent experiment points
 * (workload x mode x trial). Every point runs on its own Device /
 * simulator instance with a counter-derived RNG stream
 * (seed = hash(baseSeed, mode, workload, trial)), so there is no
 * shared mutable state between points and results are merged back in
 * submission order: the output of `--jobs N` is byte-identical to
 * the output of `--jobs 1` for any N.
 *
 * The engine also records lightweight per-point and per-batch
 * metrics (wall time, queue wait, points/sec, steal count) so the
 * speedup of a parallel sweep is observable without perturbing the
 * simulated results.
 */

#ifndef UVMASYNC_CORE_PARALLEL_RUNNER_HH
#define UVMASYNC_CORE_PARALLEL_RUNNER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace uvmasync
{

/** One point of an experiment grid: a single (workload, mode) cell. */
struct ExperimentPoint
{
    std::string workload;
    TransferMode mode = TransferMode::Standard;
    ExperimentOptions opts;
};

/** Host-side execution metrics of one point (not simulated time). */
struct PointMetrics
{
    double wallMs = 0.0;      //!< execution wall time of the point
    double queueWaitMs = 0.0; //!< batch submission -> point start
    unsigned worker = 0;      //!< worker index that ran the point
    bool stolen = false;      //!< ran on a worker it was not queued on
};

/** Terminal (or per-attempt) classification of a point. */
enum class PointStatus
{
    Ok,          //!< produced a result
    Aborted,     //!< TransferAborted (injected retry budget)
    Timeout,     //!< PointTimeout (watchdog ceiling)
    Failed,      //!< any other captured error
    Quarantined, //!< still failing after the retry budget
    Cancelled,   //!< batch cancelled before the point ran
};

/** Stable status slug ("ok", "aborted", "timeout", ...). */
const char *pointStatusName(PointStatus status);

/** One failed attempt of a point (the quarantine trail). */
struct PointAttempt
{
    PointStatus status = PointStatus::Failed;
    std::string error;
};

/** Outcome of one point: a result or a captured error. */
struct PointOutcome
{
    bool ok = false;
    PointStatus status = PointStatus::Failed;
    std::string error; //!< what() of the captured exception, if !ok

    /** Attempts consumed (1 on first-try success). */
    std::uint32_t attempts = 0;

    /** Skipped because a resume journal already had the result. */
    bool restored = false;

    /** Served from the cross-run result store (never simulated). */
    bool cached = false;

    /** Every failed attempt, in order (empty on first-try success). */
    std::vector<PointAttempt> attemptTrail;

    ExperimentResult result;
    PointMetrics metrics;
};

class PointJournal;
class PointCache;

/** Retry/quarantine policy of a batch. */
struct RunPolicy
{
    /**
     * Re-runs granted to a failed point, always with the point's own
     * seed — a deterministic failure fails identically, so retries
     * only save points hit by host-side transients (and never change
     * what a successful point computes).
     */
    std::uint32_t retries = 1;

    /** Write-ahead journal for checkpoint/resume; null = none. */
    PointJournal *journal = nullptr;

    /**
     * Cross-run content-addressed result cache; null = none. Looked
     * up before any point simulates and populated from the
     * submission-order merge, so cached and uncached batches produce
     * byte-identical output at any job count. Composes with journal:
     * the journal is the per-run durability layer, the cache the
     * cross-run memoization layer.
     */
    PointCache *cache = nullptr;

    /**
     * Invoked from the submission-order merge — under the same lock
     * and in the same frontier order as journal commits and cache
     * inserts, after both — once per point, including restored and
     * cached points. Because the call rides the merge, any observer
     * (a result streamer, a progress poller) sees a strictly growing
     * prefix of the batch in submission order at any job count, and
     * a journal record is already durable (fsync'd) when the
     * callback for its point fires. Keep it cheap: it runs with the
     * merge lock held.
     */
    std::function<void(std::size_t index, const PointOutcome &out)>
        onPointMerged;

    /**
     * Cooperative cancellation flag, owned by the caller. Checked
     * before every attempt of every point: once set, points that
     * have not started (and retries that have not begun) complete
     * immediately as PointStatus::Cancelled (ok = false) instead of
     * simulating. In-flight attempts run to completion — simulation
     * results are never torn. Cancelled outcomes are merged but
     * never journaled or cached, so a journal only ever holds real
     * outcomes and stays a clean resume/stream source.
     */
    const std::atomic<bool> *cancel = nullptr;
};

/**
 * Write-ahead log of per-point outcomes. The engine calls commit()
 * in submission order (never concurrently), so an implementation can
 * append records to a file and the file stays byte-deterministic at
 * any job count. Implemented by journal/journal.hh's RunJournal; the
 * interface lives here so core does not depend on the journal
 * library.
 */
class PointJournal
{
  public:
    virtual ~PointJournal() = default;

    /**
     * Restore the completed outcome of point @p index from a prior
     * run; returns false when the point must (re)run.
     */
    virtual bool restore(std::size_t index, PointOutcome &out) = 0;

    /**
     * Record the terminal outcome of point @p index. Returns false
     * when the record could not be made durable (disk full, I/O
     * error): the engine counts the miss in
     * BatchMetrics::journalErrors and the batch keeps running — a
     * journal write failure degrades crash-safety, it never kills
     * the sweep.
     */
    virtual bool commit(std::size_t index, PointOutcome &out) = 0;
};

/**
 * Cross-run memoization of per-point results, keyed on content (the
 * point's full configuration), not on position in a batch. The
 * engine calls lookup() for every live point in submission order on
 * the calling thread before any worker spawns — hit/miss sequences
 * (and an implementation's LRU state) are therefore deterministic at
 * any job count — and store() from the submission-order merge (never
 * concurrently), so an append-only backing file stays
 * byte-deterministic too. Implemented by store/result_store.hh's
 * StorePointCache; the interface lives here so core does not depend
 * on the store library.
 */
class PointCache
{
  public:
    virtual ~PointCache() = default;

    /**
     * Serve the outcome of point @p index from the cache; returns
     * false when the point must simulate. A served outcome must be
     * indistinguishable from a fresh first-try success (ok, one
     * attempt, empty trail) so journals and reports stay
     * byte-identical between warm and cold batches.
     */
    virtual bool lookup(std::size_t index, PointOutcome &out) = 0;

    /**
     * Offer a completed outcome for caching. Called for successful
     * outcomes only; implementations may decline (e.g. traced
     * points) and must dedup re-offered entries.
     */
    virtual void store(std::size_t index, const PointOutcome &out) = 0;
};

/** Host-side metrics of one batch. */
struct BatchMetrics
{
    double wallMs = 0.0;       //!< batch submission -> last completion
    double busyMs = 0.0;       //!< sum of per-point wall times
    double pointsPerSec = 0.0; //!< points / wallMs
    unsigned jobs = 1;         //!< worker count used
    std::size_t points = 0;    //!< points submitted
    std::size_t steals = 0;    //!< cross-worker steals
    std::size_t restored = 0;  //!< points skipped via --resume
    std::size_t cacheHits = 0; //!< points served by the result store
    std::size_t journalErrors = 0; //!< commits the journal refused
};

/** Batch outcome, point outcomes in submission order. */
struct BatchResult
{
    std::vector<PointOutcome> points;
    BatchMetrics metrics;

    /** True when every point produced a result. */
    bool allOk() const;

    /** Points that exhausted their retry budget. */
    std::size_t quarantined() const;

    /** True when any point was quarantined (partial results). */
    bool degraded() const { return quarantined() > 0; }

    /**
     * Results in submission order; throws std::runtime_error naming
     * the first failed point if any point failed.
     */
    std::vector<ExperimentResult> results() const;
};

/**
 * Work-stealing engine over independent experiment points.
 *
 * Each worker thread owns an Experiment (and therefore builds its own
 * Device per point), so points never share simulator state. With
 * jobs == 1 the batch runs inline on the calling thread.
 */
class ParallelRunner
{
  public:
    /**
     * @param system testbed configuration, copied into every worker
     * @param jobs   worker threads; 0 picks globalJobs()
     */
    explicit ParallelRunner(SystemConfig system = SystemConfig::a100Epyc(),
                            unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /** Run a batch; per-point errors are captured, never thrown. */
    BatchResult runPoints(const std::vector<ExperimentPoint> &points);

    /**
     * Run a batch under an explicit retry/quarantine policy. Failed
     * points are re-run with the same seed up to policy.retries
     * extra attempts, then quarantined (status + attempt trail in
     * the outcome). With policy.journal set, completed outcomes are
     * committed in submission order and already-journaled points are
     * restored instead of re-run.
     */
    BatchResult runPoints(const std::vector<ExperimentPoint> &points,
                          const RunPolicy &policy);

    /** Run a batch; throws on the first failed point. */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentPoint> &points);

    /**
     * Counter-derived seed of one grid point: a stable (FNV-1a +
     * splitmix64) hash of (baseSeed, workload, mode, trial). Equal
     * keys give equal seeds; any differing component gives a
     * statistically independent stream. Machine-independent.
     */
    static std::uint64_t pointSeed(std::uint64_t baseSeed,
                                   const std::string &workload,
                                   TransferMode mode,
                                   std::uint32_t trial);

    /**
     * Expand a (workloads x modes x trials) grid into points in
     * canonical submission order (workload-major, then mode, then
     * trial). Each point's baseSeed is pointSeed(...) of its key, so
     * trials are independent replicas with no shared RNG state.
     */
    static std::vector<ExperimentPoint>
    expandGrid(const std::vector<std::string> &workloads,
               const std::vector<TransferMode> &modes,
               std::uint32_t trials, const ExperimentOptions &base);

  private:
    SystemConfig system_;
    unsigned jobs_;
};

/**
 * Zeroed stand-in result for a quarantined point, carrying only the
 * point's identity (workload/mode/size). Keeps partial batches
 * report-shaped — findMode() still resolves — while the degraded-run
 * banner and robustness table flag the gap.
 */
ExperimentResult quarantinedPlaceholder(const ExperimentPoint &point);

/**
 * Process-wide default parallelism: the last setGlobalJobs() value,
 * else the UVMASYNC_JOBS environment variable, else
 * std::thread::hardware_concurrency().
 */
unsigned globalJobs();

/** Override the default parallelism (CLI --jobs); 0 restores auto. */
void setGlobalJobs(unsigned jobs);

} // namespace uvmasync

#endif // UVMASYNC_CORE_PARALLEL_RUNNER_HH
