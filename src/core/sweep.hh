/**
 * @file
 * Sensitivity sweeps (Section 5): CUDA block count, threads per
 * block, and L1-cache/shared-memory partition.
 */

#ifndef UVMASYNC_CORE_SWEEP_HH
#define UVMASYNC_CORE_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/parallel_runner.hh"
#include "core/report.hh"

namespace uvmasync
{

/** One sweep point: a parameter value and its five-mode results. */
struct SweepPoint
{
    std::uint64_t value = 0; //!< blocks, threads, or carveout bytes
    ModeSet modes;
};

/**
 * A sweep's (value x mode) grid before execution: one ExperimentPoint
 * per cell, value-major then mode — the canonical submission order.
 * Exposed so callers that need batch-level control (journaling,
 * retry policy, resume) can run the grid through ParallelRunner
 * themselves and reassemble with assembleSweepPoints().
 */
struct SweepGrid
{
    std::vector<std::uint64_t> values;
    std::vector<ExperimentPoint> points;
};

/** @{ Grid builders matching the Sweep methods below. */
SweepGrid blockSweepGrid(const std::string &workload,
                         const std::vector<std::uint64_t> &blockCounts,
                         const ExperimentOptions &base = {});
SweepGrid threadSweepGrid(const std::string &workload,
                          const std::vector<std::uint32_t> &threadCounts,
                          std::uint64_t fixedBlocks,
                          const ExperimentOptions &base = {});
SweepGrid sharedMemSweepGrid(const std::string &workload,
                             const std::vector<Bytes> &carveouts,
                             const ExperimentOptions &base = {});
/** @} */

/**
 * Fold a grid's batch outcome back into sweep order. Quarantined
 * cells carry quarantinedPlaceholder() results, so a degraded sweep
 * still has its full shape; check batch.degraded() to report it.
 */
std::vector<SweepPoint> assembleSweepPoints(const SweepGrid &grid,
                                            const BatchResult &batch);

/**
 * Runs the paper's three sensitivity studies on one workload
 * (vector_seq in the paper).
 *
 * Every sweep fans its full (value x mode) grid out through the
 * ParallelRunner engine (see parallel_runner.hh) and merges results
 * in sweep order, so output is independent of the job count. An
 * empty value list is a usage error and trips an assertion — a sweep
 * of zero points has no meaningful result shape.
 */
class Sweep
{
  public:
    explicit Sweep(Experiment &experiment) : experiment_(experiment) {}

    /**
     * Figure 11: blocks 4096 -> 16 at 256 threads/block.
     * @p policy forwards batch-level control (retries, journal,
     * result-store cache) to the underlying ParallelRunner, so an
     * incremental sweep re-simulates only never-seen cells.
     */
    std::vector<SweepPoint>
    blockSweep(const std::string &workload,
               const std::vector<std::uint64_t> &blockCounts,
               const ExperimentOptions &base = {},
               const RunPolicy &policy = {});

    /** Figure 12: threads 1024 -> 32 at a fixed 64-block grid. */
    std::vector<SweepPoint>
    threadSweep(const std::string &workload,
                const std::vector<std::uint32_t> &threadCounts,
                std::uint64_t fixedBlocks,
                const ExperimentOptions &base = {},
                const RunPolicy &policy = {});

    /** Figure 13: shared-memory carveout 2 KiB -> 128 KiB. */
    std::vector<SweepPoint>
    sharedMemSweep(const std::string &workload,
                   const std::vector<Bytes> &carveouts,
                   const ExperimentOptions &base = {},
                   const RunPolicy &policy = {});

  private:
    Experiment &experiment_;
};

} // namespace uvmasync

#endif // UVMASYNC_CORE_SWEEP_HH
