#include "core/report.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"
#include "trace/metrics.hh"

namespace uvmasync
{

const ExperimentResult &
findMode(const ModeSet &set, TransferMode mode)
{
    for (const ExperimentResult &res : set) {
        if (res.mode == mode)
            return res;
    }
    fatal("mode %s missing from result set", transferModeName(mode));
}

TextTable
breakdownTable(const std::vector<ModeSet> &workloads)
{
    TextTable table({"workload", "mode", "gpu_kernel", "memcpy",
                     "allocation", "overall"});
    for (const ModeSet &set : workloads) {
        const ExperimentResult &base =
            findMode(set, TransferMode::Standard);
        double ref = base.meanBreakdown().overallPs();
        for (const ExperimentResult &res : set) {
            TimeBreakdown mean = res.meanBreakdown();
            table.addRow({res.workload, transferModeName(res.mode),
                          fmtDouble(mean.kernelPs / ref, 3),
                          fmtDouble(mean.transferPs / ref, 3),
                          fmtDouble(mean.allocPs / ref, 3),
                          fmtDouble(mean.overallPs() / ref, 3)});
        }
        table.addSeparator();
    }
    return table;
}

double
geomeanImprovement(const std::vector<ModeSet> &workloads,
                   TransferMode mode)
{
    std::vector<double> speedups;
    speedups.reserve(workloads.size());
    for (const ModeSet &set : workloads) {
        double base = findMode(set, TransferMode::Standard)
                          .meanBreakdown()
                          .overallPs();
        double other = findMode(set, mode).meanBreakdown().overallPs();
        UVMASYNC_ASSERT(other > 0.0, "zero overall time");
        speedups.push_back(base / other);
    }
    return geomean(speedups) - 1.0;
}

double
geomeanComponentSaving(const std::vector<ModeSet> &workloads,
                       TransferMode mode, int component)
{
    auto pick = [component](const TimeBreakdown &b) {
        switch (component) {
          case 0: return b.allocPs;
          case 1: return b.transferPs;
          default: return b.kernelPs;
        }
    };
    std::vector<double> ratios;
    for (const ModeSet &set : workloads) {
        double base = pick(
            findMode(set, TransferMode::Standard).meanBreakdown());
        double other = pick(findMode(set, mode).meanBreakdown());
        if (base <= 0.0 || other <= 0.0)
            continue;
        ratios.push_back(other / base);
    }
    if (ratios.empty())
        return 0.0;
    return 1.0 - geomean(ratios);
}

TextTable
comparisonTable(const std::vector<ComparisonRow> &rows)
{
    TextTable table({"metric", "paper", "measured", "delta"});
    for (const ComparisonRow &row : rows) {
        table.addRow({row.label, fmtPercent(row.paperValue),
                      fmtPercent(row.measuredValue),
                      fmtPercent(row.measuredValue - row.paperValue)});
    }
    return table;
}

void
printTable(std::ostream &os, const std::string &title,
           const TextTable &table)
{
    os << "\n== " << title << " ==\n";
    table.print(os);
    os.flush();
}

TextTable
parallelMetricsTable(const BatchMetrics &metrics)
{
    // busy/wall is the average number of points in flight, an upper
    // bound on the speedup actually realised (they coincide when the
    // machine has at least `jobs` free cores).
    TextTable table({"jobs", "points", "wall_ms", "busy_ms",
                     "points_per_sec", "concurrency", "steals",
                     "cache_hits"});
    double concurrency = metrics.wallMs > 0.0
                             ? metrics.busyMs / metrics.wallMs
                             : 0.0;
    table.addRow({std::to_string(metrics.jobs),
                  std::to_string(metrics.points),
                  fmtDouble(metrics.wallMs, 1),
                  fmtDouble(metrics.busyMs, 1),
                  fmtDouble(metrics.pointsPerSec, 1),
                  fmtDouble(concurrency, 2),
                  std::to_string(metrics.steals),
                  std::to_string(metrics.cacheHits)});
    return table;
}

TextTable
robustnessTable(const std::vector<ExperimentPoint> &points,
                const BatchResult &batch)
{
    TextTable table(
        {"workload", "mode", "status", "attempts", "error"});
    for (std::size_t i = 0;
         i < points.size() && i < batch.points.size(); ++i) {
        const PointOutcome &out = batch.points[i];
        if (out.ok)
            continue;
        table.addRow({points[i].workload,
                      transferModeName(points[i].mode),
                      pointStatusName(out.status),
                      std::to_string(out.attempts), out.error});
    }
    return table;
}

TextTable
traceUtilizationTable(const std::vector<ModeSet> &workloads)
{
    TextTable table({"workload", "mode", "wall", "pcie busy",
                     "queue wait", "faults/batches", "prefetch acc",
                     "overlap"});
    for (const ModeSet &set : workloads) {
        for (const ExperimentResult &res : set) {
            if (res.trace.empty())
                continue;
            TraceMetrics m = computeTraceMetrics(res.trace);
            table.addRow(
                {res.workload, transferModeName(res.mode),
                 fmtTime(static_cast<double>(m.wallEndPs)),
                 fmtTime(static_cast<double>(m.pcieBusyPs)),
                 fmtTime(static_cast<double>(m.pcieQueueWaitPs)),
                 std::to_string(m.faultsRaised) + "/" +
                     std::to_string(m.faultBatches),
                 m.prefetchIssued ? fmtPercent(m.prefetchAccuracy)
                                  : std::string("-"),
                 fmtPercent(m.overlapFraction)});
        }
    }
    return table;
}

} // namespace uvmasync
