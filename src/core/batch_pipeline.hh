/**
 * @file
 * The paper's proposed inter-job data-transfer model (Section 6,
 * Figure 14): in a batch of jobs, job i+1's allocation overlaps job
 * i's kernel, and job i's free overlaps job i+1's kernel, hiding the
 * allocation time that dominates once UVM + async memcpy have shrunk
 * transfer and kernel time.
 */

#ifndef UVMASYNC_CORE_BATCH_PIPELINE_HH
#define UVMASYNC_CORE_BATCH_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "runtime/time_breakdown.hh"
#include "runtime/timeline.hh"

namespace uvmasync
{

/** Outcome of scheduling a job batch both ways. */
struct BatchScheduleResult
{
    double serialPs = 0.0;    //!< current model: jobs back to back
    double pipelinedPs = 0.0; //!< Figure 14's overlapped model

    /**
     * Fractional improvement of the pipelined model.
     *
     * Sentinel: an empty or zero-length batch (serialPs <= 0) has no
     * defined improvement and returns exactly 0.0 — callers that
     * must distinguish "no gain" from "no jobs" should check
     * serialPs themselves.
     */
    double
    improvement() const
    {
        return serialPs > 0.0 ? 1.0 - pipelinedPs / serialPs : 0.0;
    }
};

/**
 * Schedule @p jobs (given as per-job breakdowns) under both models.
 *
 * An empty @p jobs vector is allowed and returns the documented
 * sentinel result {serialPs = 0, pipelinedPs = 0, improvement() = 0}.
 *
 * The allocation component is split between a pre-kernel part
 * (cudaMallocManaged) and a post-kernel part (cudaFree) by
 * @p allocSplit; under the pipelined model each part overlaps the
 * neighbouring job's GPU phase.
 */
BatchScheduleResult
scheduleBatch(const std::vector<TimeBreakdown> &jobs,
              double allocSplit = 0.55);

/**
 * Phase timelines of both schedules (the paper's Figure 14 chart):
 * lane 0 = CPU (alloc/free), lane 1 = GPU (transfer+kernel).
 */
struct BatchTimelines
{
    Timeline serial;
    Timeline pipelined;
};

/** Build renderable timelines for @p jobs under both models. */
BatchTimelines
buildBatchTimelines(const std::vector<TimeBreakdown> &jobs,
                    double allocSplit = 0.55);

} // namespace uvmasync

#endif // UVMASYNC_CORE_BATCH_PIPELINE_HH
