#include "core/batch_pipeline.hh"

#include <algorithm>

#include "common/logging.hh"

namespace uvmasync
{

BatchScheduleResult
scheduleBatch(const std::vector<TimeBreakdown> &jobs, double allocSplit)
{
    UVMASYNC_ASSERT(allocSplit >= 0.0 && allocSplit <= 1.0,
                    "alloc split %f out of [0, 1]", allocSplit);
    BatchScheduleResult res;
    if (jobs.empty())
        return res;

    // Serial: everything back to back.
    for (const TimeBreakdown &job : jobs)
        res.serialPs += job.overallPs();

    // Pipelined (Figure 14): the CPU thread runs allocations of
    // upcoming jobs and frees of finished jobs while the GPU is busy
    // with transfer+kernel. GPU phases of consecutive jobs still
    // serialise on the device. Allocations take CPU priority (they
    // gate GPU progress); frees fill the remaining CPU time.
    double gpuFree = 0.0; // when the GPU finishes the previous job
    double cpuFree = 0.0; // when the CPU thread is available
    std::vector<std::pair<double, double>> frees; // (ready, cost)
    frees.reserve(jobs.size());
    for (const TimeBreakdown &job : jobs) {
        double alloc = job.allocPs * allocSplit;
        double gpuWork = job.transferPs + job.kernelPs;

        // Allocation runs on the CPU as early as possible, while the
        // GPU still processes earlier jobs.
        double allocDone = cpuFree + alloc;
        cpuFree = allocDone;

        // The GPU phase needs both the allocation and the device.
        double gpuStart = std::max(allocDone, gpuFree);
        gpuFree = gpuStart + gpuWork;

        // cudaFree becomes eligible once the job's GPU phase is done.
        frees.emplace_back(gpuFree, job.allocPs * (1.0 - allocSplit));
    }
    double end = gpuFree;
    for (const auto &[ready, cost] : frees) {
        cpuFree = std::max(cpuFree, ready) + cost;
        end = std::max(end, cpuFree);
    }
    res.pipelinedPs = end;
    return res;
}

BatchTimelines
buildBatchTimelines(const std::vector<TimeBreakdown> &jobs,
                    double allocSplit)
{
    UVMASYNC_ASSERT(allocSplit >= 0.0 && allocSplit <= 1.0,
                    "alloc split %f out of [0, 1]", allocSplit);
    BatchTimelines out;
    for (Timeline *tl : {&out.serial, &out.pipelined}) {
        tl->setLaneName(0, "cpu");
        tl->setLaneName(1, "gpu");
    }

    auto toTick = [](double ps) {
        return static_cast<Tick>(ps < 0.0 ? 0.0 : ps);
    };

    // Serial: alloc -> gpu (transfer+kernel) -> free, per job.
    Tick cursor = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        std::string id = "job" + std::to_string(i);
        Tick alloc = toTick(jobs[i].allocPs * allocSplit);
        Tick gpuWork =
            toTick(jobs[i].transferPs + jobs[i].kernelPs);
        Tick freeTime =
            toTick(jobs[i].allocPs * (1.0 - allocSplit));
        out.serial.add(PhaseKind::Alloc, id + " alloc", cursor,
                       cursor + alloc, 0);
        cursor += alloc;
        out.serial.add(PhaseKind::Kernel, id + " gpu", cursor,
                       cursor + gpuWork, 1);
        cursor += gpuWork;
        out.serial.add(PhaseKind::Free, id + " free", cursor,
                       cursor + freeTime, 0);
        cursor += freeTime;
    }

    // Pipelined: mirrors scheduleBatch() exactly.
    double gpuFree = 0.0;
    double cpuFree = 0.0;
    std::vector<std::pair<double, std::size_t>> frees;
    std::vector<double> freeCost;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        std::string id = "job" + std::to_string(i);
        double alloc = jobs[i].allocPs * allocSplit;
        double gpuWork = jobs[i].transferPs + jobs[i].kernelPs;
        double allocDone = cpuFree + alloc;
        out.pipelined.add(PhaseKind::Alloc, id + " alloc",
                          toTick(cpuFree), toTick(allocDone), 0);
        cpuFree = allocDone;
        double gpuStart = std::max(allocDone, gpuFree);
        gpuFree = gpuStart + gpuWork;
        out.pipelined.add(PhaseKind::Kernel, id + " gpu",
                          toTick(gpuStart), toTick(gpuFree), 1);
        frees.emplace_back(gpuFree, i);
        freeCost.push_back(jobs[i].allocPs * (1.0 - allocSplit));
    }
    for (const auto &[ready, i] : frees) {
        double begin = std::max(cpuFree, ready);
        cpuFree = begin + freeCost[i];
        out.pipelined.add(PhaseKind::Free,
                          "job" + std::to_string(i) + " free",
                          toTick(begin), toTick(cpuFree), 0);
    }
    return out;
}

} // namespace uvmasync
