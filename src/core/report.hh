/**
 * @file
 * Result aggregation and rendering: normalized stacked breakdowns
 * (the paper's Figure 7/8 bars as tables), geometric-mean
 * improvements, and paper-vs-measured comparison rows for
 * EXPERIMENTS.md.
 */

#ifndef UVMASYNC_CORE_REPORT_HH
#define UVMASYNC_CORE_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/experiment.hh"
#include "core/parallel_runner.hh"

namespace uvmasync
{

/** Results of one workload across the five modes. */
using ModeSet = std::vector<ExperimentResult>;

/** Find the entry for @p mode in a ModeSet (fatal if missing). */
const ExperimentResult &findMode(const ModeSet &set, TransferMode mode);

/**
 * Normalized stacked-breakdown table for a group of workloads: each
 * row is workload x mode with kernel/memcpy/alloc fractions relative
 * to the workload's standard overall time (the Figure 7/8 bars).
 */
TextTable breakdownTable(const std::vector<ModeSet> &workloads);

/**
 * Geometric-mean overall-time improvement of @p mode over standard
 * across workloads: positive means faster (the paper's "X%
 * performance over standard").
 */
double geomeanImprovement(const std::vector<ModeSet> &workloads,
                          TransferMode mode);

/**
 * Geometric-mean reduction of one component versus standard across
 * workloads (e.g. the paper's "64.24% memcpy time savings").
 * @param component 0 = alloc, 1 = transfer, 2 = kernel
 */
double geomeanComponentSaving(const std::vector<ModeSet> &workloads,
                              TransferMode mode, int component);

/** One paper-vs-measured comparison line. */
struct ComparisonRow
{
    std::string label;
    double paperValue;    //!< as a fraction (0.21 = 21%)
    double measuredValue; //!< same convention
};

/** Render comparison rows with a pass/deviation column. */
TextTable comparisonTable(const std::vector<ComparisonRow> &rows);

/** Convenience: print a titled table to @p os. */
void printTable(std::ostream &os, const std::string &title,
                const TextTable &table);

/**
 * Render the parallel engine's host-side batch metrics (jobs, wall
 * time, busy time, points/sec, steals) so the speedup of a parallel
 * sweep is observable alongside the simulated results.
 */
TextTable parallelMetricsTable(const BatchMetrics &metrics);

/**
 * Robustness summary of a degraded batch: one row per point that did
 * not produce a result (status, attempts consumed, last error), so a
 * partial sweep states exactly which cells are placeholders and why.
 * Empty (header only) when every point is ok.
 */
TextTable robustnessTable(const std::vector<ExperimentPoint> &points,
                          const BatchResult &batch);

/**
 * Per-resource utilization summary folded out of traced results: one
 * row per workload x mode with PCIe busy/queueing, fault batching,
 * prefetch accuracy and kernel/transfer overlap (see trace/metrics.hh
 * for the underlying quantities). Untraced results are skipped.
 */
TextTable traceUtilizationTable(const std::vector<ModeSet> &workloads);

} // namespace uvmasync

#endif // UVMASYNC_CORE_REPORT_HH
