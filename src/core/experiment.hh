/**
 * @file
 * The experiment harness: runs a workload under a transfer mode at an
 * input size, repeats it with per-run measurement noise (the paper's
 * 30-iteration methodology), and aggregates breakdowns and counters.
 */

#ifndef UVMASYNC_CORE_EXPERIMENT_HH
#define UVMASYNC_CORE_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/lint.hh"
#include "common/stats.hh"
#include "gpu/transfer_mode.hh"
#include "inject/injector.hh"
#include "runtime/device.hh"
#include "runtime/system_config.hh"
#include "runtime/time_breakdown.hh"
#include "workloads/workload.hh"

namespace uvmasync
{

/** Per-experiment knobs. */
struct ExperimentOptions
{
    SizeClass size = SizeClass::Super;

    /** Measurement repetitions (paper: 30). */
    std::uint32_t runs = 30;

    std::uint64_t baseSeed = 42;

    /** L1/shared partition override (Figure 13); 0 = default. */
    Bytes sharedCarveout = 0;

    /** Launch-geometry override (Figures 11/12). */
    GeometryOverride geometry;

    /**
     * Pre-run static lint of the generated job: Enforce refuses to
     * simulate a model with error-severity findings (the default),
     * Warn reports and runs anyway, Off skips the linter.
     */
    LintMode lint = LintMode::Enforce;

    /**
     * Record the deterministic execution's trace into
     * ExperimentResult::trace (noisy repetitions only perturb the
     * breakdown and are not traced).
     */
    bool trace = false;

    /** Category mask applied when tracing (trace/trace.hh bits). */
    std::uint32_t traceCategories = traceAllCategories;

    /**
     * Fault-injection plan for the deterministic execution; the
     * default plan is inert, making the run byte-identical to one
     * with no injection support at all.
     */
    InjectPlan inject;

    /**
     * Seed of the injector's RNG streams; 0 uses the plan's own
     * `inject.seed`. Combined with baseSeed per point, so injected
     * parallel batches replay byte-identically to serial.
     */
    std::uint64_t injectSeed = 0;
};

/** Aggregated outcome of one (workload, mode, options) cell. */
struct ExperimentResult
{
    std::string workload;
    TransferMode mode = TransferMode::Standard;
    SizeClass size = SizeClass::Super;

    /** Deterministic single-execution breakdown. */
    TimeBreakdown clean;

    /** Hardware counters of the deterministic execution. */
    RunCounters counters;

    /** Noisy per-run breakdowns (length = options.runs). */
    std::vector<TimeBreakdown> runs;

    /** Deterministic execution's trace (empty unless options.trace). */
    Tracer trace;

    /** What the injector actually did (all zero when not injecting). */
    InjectCounters injectCounters;

    /** Mean of the noisy breakdowns. */
    TimeBreakdown meanBreakdown() const;

    /** Overall times (ps) of the noisy runs as a sample set. */
    SampleSet overallSamples() const;
};

/**
 * Drives Devices and the noise model over the workload registry.
 */
class Experiment
{
  public:
    explicit Experiment(SystemConfig system = SystemConfig::a100Epyc());

    const SystemConfig &system() const { return system_; }

    /** Run one cell. */
    ExperimentResult run(const std::string &workloadName,
                         TransferMode mode,
                         const ExperimentOptions &opts = {});

    /** Run all five modes for one workload. */
    std::vector<ExperimentResult>
    runAllModes(const std::string &workloadName,
                const ExperimentOptions &opts = {});

  private:
    SystemConfig system_;
};

} // namespace uvmasync

#endif // UVMASYNC_CORE_EXPERIMENT_HH
