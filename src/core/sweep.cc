#include "core/sweep.hh"

#include "common/logging.hh"

namespace uvmasync
{

namespace
{

/**
 * Run a sweep grid as one parallel batch and reassemble per-value
 * ModeSets in sweep order. The merge is submission-ordered, so the
 * result is identical to the serial per-value loop this replaces. A
 * quarantined cell degrades the sweep (placeholder + banner) instead
 * of killing it.
 */
std::vector<SweepPoint>
runSweepGrid(Experiment &experiment, const SweepGrid &grid,
             const RunPolicy &policy)
{
    ParallelRunner runner(experiment.system());
    BatchResult batch = runner.runPoints(grid.points, policy);
    if (batch.degraded()) {
        warn("DEGRADED RUN: %zu of %zu sweep cells quarantined; "
             "their cells hold zeroed placeholder results",
             batch.quarantined(), grid.points.size());
        for (std::size_t i = 0; i < grid.points.size(); ++i) {
            const PointOutcome &out = batch.points[i];
            if (!out.ok)
                warn("  %s/%s %s after %u attempt(s): %s",
                     grid.points[i].workload.c_str(),
                     transferModeName(grid.points[i].mode),
                     pointStatusName(out.status), out.attempts,
                     out.error.c_str());
        }
    }
    return assembleSweepPoints(grid, batch);
}

SweepGrid
makeGrid(const std::string &workload,
         const std::vector<std::uint64_t> &values,
         const std::vector<ExperimentOptions> &optsPerValue)
{
    SweepGrid grid;
    grid.values = values;
    grid.points.reserve(values.size() * allTransferModes.size());
    for (const ExperimentOptions &opts : optsPerValue) {
        for (TransferMode mode : allTransferModes)
            grid.points.push_back(
                ExperimentPoint{workload, mode, opts});
    }
    return grid;
}

} // namespace

SweepGrid
blockSweepGrid(const std::string &workload,
               const std::vector<std::uint64_t> &blockCounts,
               const ExperimentOptions &base)
{
    UVMASYNC_ASSERT(!blockCounts.empty(),
                    "blockSweep needs at least one block count");
    std::vector<ExperimentOptions> optsPerValue;
    optsPerValue.reserve(blockCounts.size());
    for (std::uint64_t blocks : blockCounts) {
        ExperimentOptions opts = base;
        opts.geometry.gridBlocks = blocks;
        if (!opts.geometry.threadsPerBlock)
            opts.geometry.threadsPerBlock = 256;
        optsPerValue.push_back(opts);
    }
    return makeGrid(workload, blockCounts, optsPerValue);
}

SweepGrid
threadSweepGrid(const std::string &workload,
                const std::vector<std::uint32_t> &threadCounts,
                std::uint64_t fixedBlocks,
                const ExperimentOptions &base)
{
    UVMASYNC_ASSERT(!threadCounts.empty(),
                    "threadSweep needs at least one thread count");
    std::vector<std::uint64_t> values;
    std::vector<ExperimentOptions> optsPerValue;
    values.reserve(threadCounts.size());
    optsPerValue.reserve(threadCounts.size());
    for (std::uint32_t threads : threadCounts) {
        ExperimentOptions opts = base;
        opts.geometry.gridBlocks = fixedBlocks;
        opts.geometry.threadsPerBlock = threads;
        values.push_back(threads);
        optsPerValue.push_back(opts);
    }
    return makeGrid(workload, values, optsPerValue);
}

SweepGrid
sharedMemSweepGrid(const std::string &workload,
                   const std::vector<Bytes> &carveouts,
                   const ExperimentOptions &base)
{
    UVMASYNC_ASSERT(!carveouts.empty(),
                    "sharedMemSweep needs at least one carveout");
    std::vector<std::uint64_t> values;
    std::vector<ExperimentOptions> optsPerValue;
    values.reserve(carveouts.size());
    optsPerValue.reserve(carveouts.size());
    for (Bytes carveout : carveouts) {
        ExperimentOptions opts = base;
        opts.sharedCarveout = carveout;
        values.push_back(carveout);
        optsPerValue.push_back(opts);
    }
    return makeGrid(workload, values, optsPerValue);
}

std::vector<SweepPoint>
assembleSweepPoints(const SweepGrid &grid, const BatchResult &batch)
{
    UVMASYNC_ASSERT(batch.points.size() == grid.points.size(),
                    "batch does not match the sweep grid");
    std::vector<SweepPoint> out;
    out.reserve(grid.values.size());
    std::size_t cursor = 0;
    for (std::uint64_t value : grid.values) {
        SweepPoint point;
        point.value = value;
        for (std::size_t m = 0; m < allTransferModes.size(); ++m) {
            const PointOutcome &outcome = batch.points[cursor + m];
            point.modes.push_back(
                outcome.ok
                    ? outcome.result
                    : quarantinedPlaceholder(grid.points[cursor + m]));
        }
        cursor += allTransferModes.size();
        out.push_back(std::move(point));
    }
    return out;
}

std::vector<SweepPoint>
Sweep::blockSweep(const std::string &workload,
                  const std::vector<std::uint64_t> &blockCounts,
                  const ExperimentOptions &base,
                  const RunPolicy &policy)
{
    return runSweepGrid(experiment_,
                        blockSweepGrid(workload, blockCounts, base),
                        policy);
}

std::vector<SweepPoint>
Sweep::threadSweep(const std::string &workload,
                   const std::vector<std::uint32_t> &threadCounts,
                   std::uint64_t fixedBlocks,
                   const ExperimentOptions &base,
                   const RunPolicy &policy)
{
    return runSweepGrid(experiment_,
                        threadSweepGrid(workload, threadCounts,
                                        fixedBlocks, base),
                        policy);
}

std::vector<SweepPoint>
Sweep::sharedMemSweep(const std::string &workload,
                      const std::vector<Bytes> &carveouts,
                      const ExperimentOptions &base,
                      const RunPolicy &policy)
{
    return runSweepGrid(experiment_,
                        sharedMemSweepGrid(workload, carveouts, base),
                        policy);
}

} // namespace uvmasync
