#include "core/sweep.hh"

namespace uvmasync
{

std::vector<SweepPoint>
Sweep::blockSweep(const std::string &workload,
                  const std::vector<std::uint64_t> &blockCounts,
                  const ExperimentOptions &base)
{
    std::vector<SweepPoint> points;
    points.reserve(blockCounts.size());
    for (std::uint64_t blocks : blockCounts) {
        ExperimentOptions opts = base;
        opts.geometry.gridBlocks = blocks;
        if (!opts.geometry.threadsPerBlock)
            opts.geometry.threadsPerBlock = 256;
        points.push_back(
            SweepPoint{blocks,
                       experiment_.runAllModes(workload, opts)});
    }
    return points;
}

std::vector<SweepPoint>
Sweep::threadSweep(const std::string &workload,
                   const std::vector<std::uint32_t> &threadCounts,
                   std::uint64_t fixedBlocks,
                   const ExperimentOptions &base)
{
    std::vector<SweepPoint> points;
    points.reserve(threadCounts.size());
    for (std::uint32_t threads : threadCounts) {
        ExperimentOptions opts = base;
        opts.geometry.gridBlocks = fixedBlocks;
        opts.geometry.threadsPerBlock = threads;
        points.push_back(
            SweepPoint{threads,
                       experiment_.runAllModes(workload, opts)});
    }
    return points;
}

std::vector<SweepPoint>
Sweep::sharedMemSweep(const std::string &workload,
                      const std::vector<Bytes> &carveouts,
                      const ExperimentOptions &base)
{
    std::vector<SweepPoint> points;
    points.reserve(carveouts.size());
    for (Bytes carveout : carveouts) {
        ExperimentOptions opts = base;
        opts.sharedCarveout = carveout;
        points.push_back(
            SweepPoint{carveout,
                       experiment_.runAllModes(workload, opts)});
    }
    return points;
}

} // namespace uvmasync
