#include "core/sweep.hh"

#include "common/logging.hh"
#include "core/parallel_runner.hh"

namespace uvmasync
{

namespace
{

/**
 * Run a sweep grid — every (value, mode) cell — as one parallel
 * batch and reassemble per-value ModeSets in sweep order. The merge
 * is submission-ordered, so the result is identical to the serial
 * per-value loop this replaces.
 */
std::vector<SweepPoint>
runSweepGrid(Experiment &experiment,
             const std::string &workload,
             const std::vector<std::uint64_t> &values,
             const std::vector<ExperimentOptions> &optsPerValue)
{
    std::vector<ExperimentPoint> points;
    points.reserve(values.size() * allTransferModes.size());
    for (const ExperimentOptions &opts : optsPerValue) {
        for (TransferMode mode : allTransferModes)
            points.push_back(ExperimentPoint{workload, mode, opts});
    }

    ParallelRunner runner(experiment.system());
    std::vector<ExperimentResult> results = runner.run(points);

    std::vector<SweepPoint> out;
    out.reserve(values.size());
    std::size_t cursor = 0;
    for (std::uint64_t value : values) {
        SweepPoint point;
        point.value = value;
        point.modes.assign(
            results.begin() + static_cast<std::ptrdiff_t>(cursor),
            results.begin() + static_cast<std::ptrdiff_t>(
                                  cursor + allTransferModes.size()));
        cursor += allTransferModes.size();
        out.push_back(std::move(point));
    }
    return out;
}

} // namespace

std::vector<SweepPoint>
Sweep::blockSweep(const std::string &workload,
                  const std::vector<std::uint64_t> &blockCounts,
                  const ExperimentOptions &base)
{
    UVMASYNC_ASSERT(!blockCounts.empty(),
                    "blockSweep needs at least one block count");
    std::vector<ExperimentOptions> optsPerValue;
    optsPerValue.reserve(blockCounts.size());
    for (std::uint64_t blocks : blockCounts) {
        ExperimentOptions opts = base;
        opts.geometry.gridBlocks = blocks;
        if (!opts.geometry.threadsPerBlock)
            opts.geometry.threadsPerBlock = 256;
        optsPerValue.push_back(opts);
    }
    return runSweepGrid(experiment_, workload, blockCounts,
                        optsPerValue);
}

std::vector<SweepPoint>
Sweep::threadSweep(const std::string &workload,
                   const std::vector<std::uint32_t> &threadCounts,
                   std::uint64_t fixedBlocks,
                   const ExperimentOptions &base)
{
    UVMASYNC_ASSERT(!threadCounts.empty(),
                    "threadSweep needs at least one thread count");
    std::vector<std::uint64_t> values;
    std::vector<ExperimentOptions> optsPerValue;
    values.reserve(threadCounts.size());
    optsPerValue.reserve(threadCounts.size());
    for (std::uint32_t threads : threadCounts) {
        ExperimentOptions opts = base;
        opts.geometry.gridBlocks = fixedBlocks;
        opts.geometry.threadsPerBlock = threads;
        values.push_back(threads);
        optsPerValue.push_back(opts);
    }
    return runSweepGrid(experiment_, workload, values, optsPerValue);
}

std::vector<SweepPoint>
Sweep::sharedMemSweep(const std::string &workload,
                      const std::vector<Bytes> &carveouts,
                      const ExperimentOptions &base)
{
    UVMASYNC_ASSERT(!carveouts.empty(),
                    "sharedMemSweep needs at least one carveout");
    std::vector<std::uint64_t> values;
    std::vector<ExperimentOptions> optsPerValue;
    values.reserve(carveouts.size());
    optsPerValue.reserve(carveouts.size());
    for (Bytes carveout : carveouts) {
        ExperimentOptions opts = base;
        opts.sharedCarveout = carveout;
        values.push_back(carveout);
        optsPerValue.push_back(opts);
    }
    return runSweepGrid(experiment_, workload, values, optsPerValue);
}

} // namespace uvmasync
