/**
 * @file
 * The CPU<->GPU interconnect (stage U1 of the paper's pipeline).
 *
 * Real systems see very different effective PCIe bandwidth depending
 * on how a transfer is issued: pageable cudaMemcpy stages through a
 * pinned bounce buffer, demand-paged UVM migration pays per-fault
 * driver work, and bulk cudaMemPrefetchAsync approaches line rate.
 * The link model charges a per-kind efficiency on a shared
 * full-duplex pair of bandwidth resources; this asymmetry is the root
 * cause of the paper's "uvm_prefetch saves 45-64% of transfer time"
 * results.
 */

#ifndef UVMASYNC_XFER_PCIE_LINK_HH
#define UVMASYNC_XFER_PCIE_LINK_HH

#include <array>
#include <string>

#include "common/types.hh"
#include "common/units.hh"
#include "sim/resource.hh"
#include "sim/sim_object.hh"
#include "trace/trace.hh"

namespace uvmasync
{

class HostMemory;
class Injector;
class Watchdog;

/** Transfer direction over the link. */
enum class Direction
{
    HostToDevice,
    DeviceToHost,
};

/** How the transfer is issued; selects the efficiency factor. */
enum class TransferKind
{
    PageableCopy,    //!< cudaMemcpy from malloc'd host memory
    PinnedCopy,      //!< cudaMemcpy from cudaHostAlloc'd memory
    DemandMigration, //!< UVM far-fault-driven page migration
    BulkPrefetch,    //!< cudaMemPrefetchAsync bulk migration
    Writeback,       //!< UVM device->host eviction/writeback
};

constexpr std::size_t numTransferKinds = 5;

/** Human-readable kind name. */
const char *transferKindName(TransferKind k);

/** Configuration of the link. */
struct PcieConfig
{
    /** Raw per-direction bandwidth (PCIe 4.0 x16). */
    Bandwidth rawBandwidth = Bandwidth::fromGBps(26.0);

    /**
     * Effective-bandwidth factor per TransferKind. DemandMigration is
     * deliberately high: profilers (and the paper) report only the
     * DMA busy time of each migration, which runs near line rate —
     * the fault-servicing gaps surface as kernel stalls instead.
     */
    std::array<double, numTransferKinds> efficiency = {
        0.45, // PageableCopy: staged through pinned bounce buffers
        0.88, // PinnedCopy
        0.55, // DemandMigration: DMA busy time of chunk migrations
        0.82, // BulkPrefetch
        0.80, // Writeback
    };

    /** Fixed setup latency charged per transfer, by kind. */
    std::array<Tick, numTransferKinds> perTransferLatency = {
        microseconds(25), // PageableCopy: per-cudaMemcpy staging setup
        microseconds(8),  // PinnedCopy
        nanoseconds(800), // DemandMigration: per-chunk DMA descriptor
        microseconds(10), // BulkPrefetch
        microseconds(5),  // Writeback
    };
};

/**
 * Full-duplex CPU-GPU link with per-kind efficiency and accounting.
 */
class PcieLink : public SimObject
{
  public:
    PcieLink(std::string name, PcieConfig cfg);

    const PcieConfig &config() const { return cfg_; }

    /**
     * Reserve the link for a transfer of @p bytes issued at @p now.
     *
     * @param hostFactor additional host-path multiplier in (0, 1]
     *        (DRAM placement effects); 1.0 means unimpeded.
     * @return the occupied window on the direction's resource.
     */
    Occupancy transfer(Tick now, Bytes bytes, Direction dir,
                       TransferKind kind, double hostFactor = 1.0);

    /** Earliest tick a new transfer in @p dir could start. */
    Tick nextFree(Tick now, Direction dir) const;

    /** Total bytes moved in @p dir (payload, not efficiency-scaled). */
    Bytes bytesMoved(Direction dir) const;

    /** Payload bytes moved with the given kind. */
    Bytes bytesByKind(TransferKind kind) const;

    /** Total link busy time in @p dir. */
    Tick busyTime(Direction dir) const;

    /** Drop the timeline and statistics (new run). */
    void reset();

    /**
     * Record every occupancy window into @p tracer: one span per
     * transfer on the direction's lane, bytes in arg and the FCFS
     * queueing delay (start - issue tick) in arg2. Pass nullptr to
     * detach.
     */
    void
    setTrace(Tracer *tracer, std::uint32_t h2dLane = 0,
             std::uint32_t d2hLane = 0)
    {
        tracer_ = tracer;
        h2dLane_ = h2dLane;
        d2hLane_ = d2hLane;
    }

    /**
     * Attach the fault injector (null detaches): transient failures
     * with retry/backoff before the transfer issues, and bandwidth
     * degradation/stutter windows while it runs. A transfer that
     * exhausts its retry budget throws TransferAborted.
     */
    void setInjector(Injector *inject) { inject_ = inject; }

    /**
     * Attach the host-memory model so host-DIMM slow-page windows
     * (injected or otherwise) scale the host path of every transfer.
     */
    void setHostPath(HostMemory *host) { hostPath_ = host; }

    /**
     * Report every modelled transfer completion to @p watchdog, so a
     * run whose transfer count explodes (an injected eviction storm
     * thrashing the same chunks forever) trips the event ceiling
     * instead of running unbounded. Pass nullptr to detach.
     */
    void setWatchdog(Watchdog *watchdog) { watchdog_ = watchdog; }

    void exportStats(StatMap &out) const override;
    void resetStats() override;

  private:
    PcieConfig cfg_;
    BandwidthResource h2d_;
    BandwidthResource d2h_;
    std::array<Bytes, numTransferKinds> kindBytes_{};
    Bytes payloadH2d_ = 0;
    Bytes payloadD2h_ = 0;
    Tracer *tracer_ = nullptr;
    std::uint32_t h2dLane_ = 0;
    std::uint32_t d2hLane_ = 0;
    Injector *inject_ = nullptr;
    HostMemory *hostPath_ = nullptr;
    Watchdog *watchdog_ = nullptr;
};

} // namespace uvmasync

#endif // UVMASYNC_XFER_PCIE_LINK_HH
