#include "xfer/prefetcher.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace uvmasync
{

double
Prefetcher::accuracy() const
{
    std::uint64_t judged = useful_ + wasted_;
    return judged ? static_cast<double>(useful_) /
                    static_cast<double>(judged)
                  : 0.0;
}

void
Prefetcher::exportStats(StatMap &out) const
{
    putStat(out, "issued", static_cast<double>(issued_));
    putStat(out, "useful", static_cast<double>(useful_));
    putStat(out, "wasted", static_cast<double>(wasted_));
    putStat(out, "accuracy", accuracy());
}

void
Prefetcher::resetStats()
{
    issued_ = 0;
    useful_ = 0;
    wasted_ = 0;
    resetState();
}

StreamPrefetcher::StreamPrefetcher(std::string name,
                                   std::uint32_t distance)
    : Prefetcher(std::move(name), PrefetcherKind::Stream),
      distance_(distance)
{
    UVMASYNC_ASSERT(distance_ > 0, "stream prefetcher needs distance > 0");
}

void
StreamPrefetcher::appendCandidates(std::size_t rangeId,
                                   std::uint64_t chunkIndex,
                                   std::uint64_t chunkCount,
                                   std::vector<PrefetchCandidate> &out)
{
    std::size_t before = out.size();
    for (std::uint32_t i = 1; i <= distance_; ++i) {
        std::uint64_t next = chunkIndex + i;
        if (next >= chunkCount)
            break;
        out.push_back(PrefetchCandidate{rangeId, next});
    }
    recordIssued(out.size() - before);
}

std::vector<PrefetchCandidate>
StreamPrefetcher::onDemandMiss(std::size_t rangeId,
                               std::uint64_t chunkIndex,
                               std::uint64_t chunkCount)
{
    std::vector<PrefetchCandidate> out;
    appendCandidates(rangeId, chunkIndex, chunkCount, out);
    return out;
}

TreePrefetcher::TreePrefetcher(std::string name, std::uint32_t minDistance,
                               std::uint32_t maxDistance)
    : Prefetcher(std::move(name), PrefetcherKind::Tree),
      minDistance_(minDistance), maxDistance_(maxDistance)
{
    UVMASYNC_ASSERT(minDistance_ > 0 && maxDistance_ >= minDistance_,
                    "bad tree prefetcher distances [%u, %u]",
                    minDistance_, maxDistance_);
}

void
TreePrefetcher::appendCandidates(std::size_t rangeId,
                                 std::uint64_t chunkIndex,
                                 std::uint64_t chunkCount,
                                 std::vector<PrefetchCandidate> &out)
{
    auto [it, inserted] = distance_.try_emplace(rangeId, minDistance_);
    std::uint32_t dist = it->second;
    std::size_t before = out.size();
    for (std::uint32_t i = 1; i <= dist; ++i) {
        std::uint64_t next = chunkIndex + i;
        if (next >= chunkCount)
            break;
        out.push_back(PrefetchCandidate{rangeId, next});
    }
    recordIssued(out.size() - before);
}

std::vector<PrefetchCandidate>
TreePrefetcher::onDemandMiss(std::size_t rangeId,
                             std::uint64_t chunkIndex,
                             std::uint64_t chunkCount)
{
    std::vector<PrefetchCandidate> out;
    appendCandidates(rangeId, chunkIndex, chunkCount, out);
    return out;
}

void
TreePrefetcher::noteUseful(std::size_t rangeId)
{
    recordUseful();
    auto [it, inserted] = distance_.try_emplace(rangeId, minDistance_);
    it->second = std::min(maxDistance_, it->second * 2);
}

void
TreePrefetcher::noteWasted(std::size_t rangeId)
{
    recordWasted();
    auto [it, inserted] = distance_.try_emplace(rangeId, minDistance_);
    it->second = minDistance_;
}

void
TreePrefetcher::onUsefulPrefetch(std::size_t rangeId)
{
    noteUseful(rangeId);
}

void
TreePrefetcher::onWastedPrefetch(std::size_t rangeId)
{
    noteWasted(rangeId);
}

std::unique_ptr<Prefetcher>
makePrefetcher(PrefetcherKind kind, std::string name)
{
    switch (kind) {
      case PrefetcherKind::None:
        return std::make_unique<NonePrefetcher>(std::move(name));
      case PrefetcherKind::Stream:
        return std::make_unique<StreamPrefetcher>(std::move(name), 8);
      case PrefetcherKind::Tree:
        return std::make_unique<TreePrefetcher>(std::move(name));
    }
    panic("unknown prefetcher kind %d", static_cast<int>(kind));
}

} // namespace uvmasync
