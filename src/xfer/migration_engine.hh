/**
 * @file
 * UVM migration engine: the glue between the page table, the fault
 * handler, the prefetcher, device memory and the PCIe link.
 *
 * The engine is analytic/busy-until rather than callback-driven: a
 * caller asking for a chunk at time `now` receives the tick at which
 * the chunk's data is usable on the device. Usefulness of prefetches
 * is emergent — the engine migrates whatever the prefetcher predicts,
 * and a prediction pays off only if a later demand finds the chunk
 * already (or sooner) resident.
 */

#ifndef UVMASYNC_XFER_MIGRATION_ENGINE_HH
#define UVMASYNC_XFER_MIGRATION_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/device_memory.hh"
#include "mem/page_table.hh"
#include "sim/sim_object.hh"
#include "xfer/fault_handler.hh"
#include "xfer/pcie_link.hh"
#include "xfer/prefetcher.hh"

namespace uvmasync
{

/** Tunables of the UVM subsystem. */
struct UvmConfig
{
    /** Migration granularity (driver basic block). */
    Bytes chunkBytes = kib(256);

    /** Fault servicing parameters. */
    FaultHandlerConfig fault;

    /**
     * Driver-side speculative prefetcher used on demand misses (the
     * plain `uvm` configuration). None reproduces the paper's
     * fault-dominated `uvm` numbers; the ablation benches explore
     * Stream and Tree.
     */
    PrefetcherKind demandPrefetcher = PrefetcherKind::None;

    /** CPU overhead per cudaMemPrefetchAsync call. */
    Tick prefetchCallOverhead = microseconds(10);

    /**
     * Fraction of an already-resident range that a redundant
     * cudaMemPrefetchAsync re-migrates (dirty-page ping-pong between
     * consecutive kernels touching the same buffer; the `nw` effect).
     */
    double redundantPrefetchChurn = 0.05;
};

/**
 * Coordinates all data movement for managed allocations of one job.
 */
class MigrationEngine : public SimObject
{
  public:
    /**
     * @param name   stat name
     * @param cfg    UVM tunables
     * @param table  residency directory (shared with the device)
     * @param devMem HBM capacity/LRU tracking
     * @param link   CPU-GPU interconnect
     */
    MigrationEngine(std::string name, UvmConfig cfg, PageTable &table,
                    DeviceMemory &devMem, PcieLink &link);

    const UvmConfig &config() const { return cfg_; }

    /** Reset all residency and per-job accounting (new job). */
    void beginJob();

    /**
     * Demand access to a chunk at @p now.
     * @return tick at which the chunk is usable on the device.
     */
    Tick requestChunk(std::size_t rangeId, std::uint64_t chunk, Tick now);

    /**
     * Bulk cudaMemPrefetchAsync of a whole range issued at @p now.
     *
     * @param churnOk whether a redundant prefetch of already-resident
     *        data re-migrates dirty pages (true for the harness's
     *        per-launch re-prefetch; false for the initial prefetch
     *        of device-populated buffers)
     * @return the window occupied on the link (end == data ready).
     */
    Occupancy prefetchRange(std::size_t rangeId, Tick now,
                            bool churnOk = false);

    /**
     * First-touch population on the device: managed pages never
     * written by the host come into existence in GPU memory with no
     * transfer (outputs and scratch buffers).
     */
    void populateOnDevice(std::size_t rangeId);

    /**
     * Mark every device-resident chunk of a range dirty (a kernel
     * wrote the buffer; block-level execution does not track
     * individual stores).
     */
    void markRangeDirty(std::size_t rangeId);

    /**
     * Migrate all dirty chunks of a range back to the host (CPU
     * consuming results after the kernel). @return completion tick.
     */
    Tick writebackDirty(std::size_t rangeId, Tick now);

    /** Earliest tick at which every chunk of the range is usable. */
    Tick rangeReadyAt(std::size_t rangeId) const;

    /** True once every chunk of the range is device-resident. */
    bool rangeFullyResident(std::size_t rangeId) const;

    /**
     * O(ranges) check that every registered range is fully resident
     * (steady state of iterative kernels; lets the executor skip
     * per-chunk requests entirely).
     */
    bool allRangesResident() const;

    /** Latest data-ready tick across all migrations so far. */
    Tick latestReadyTick() const { return latestReady_; }

    /**
     * Route the fault/migration/prefetch lifecycle into @p tracer:
     * fault raises (instants) and batch-service spans on
     * @p faultLane, speculation issue/hit/waste/churn instants on
     * @p prefetchLane, eviction instants on @p migrateLane. Call
     * flushTrace() at end of run to close the final fault batch.
     * Pass nullptr to detach.
     */
    void setTrace(Tracer *tracer, std::uint32_t faultLane = 0,
                  std::uint32_t prefetchLane = 0,
                  std::uint32_t migrateLane = 0);

    /** Emit spans still buffered in sub-components (end of run). */
    void flushTrace();

    /**
     * Attach the fault injector (null detaches): driver backpressure
     * stalls and eviction storms on migrations here, plus the
     * fault-batch perturbations forwarded to the FaultHandler.
     * Storms force LRU tracking on for the job (beginJob).
     */
    void setInjector(Injector *inject);

    /**
     * Report every eviction to @p watchdog (null detaches). Clean
     * evictions free memory without advancing simulated time, which
     * is exactly the shape of an eviction-storm livelock — the
     * watchdog's stall detector is the only bound on it.
     */
    void setWatchdog(Watchdog *watchdog) { watchdog_ = watchdog; }

    /**
     * Total link time consumed on behalf of this job so far
     * (demand + prefetch + writeback + wasted speculation).
     */
    Tick jobTransferBusy() const { return jobTransferBusy_; }

    /** Demand faults raised this job. */
    std::uint64_t jobFaults() const { return jobFaults_; }

    /** Prefetched-but-never-demanded chunks this job. */
    std::uint64_t unusedPrefetches() const;

    const Prefetcher &prefetcher() const { return *prefetcher_; }

    void exportStats(StatMap &out) const override;
    void resetStats() override;

  private:
    /** Per-chunk engine-side tracking parallel to ManagedRange. */
    struct RangeState
    {
        std::vector<Tick> readyAt;      //!< maxTick when not migrated
        std::vector<bool> prefetched;   //!< arrived speculatively
        std::vector<bool> demanded;     //!< touched by a demand access
        std::uint64_t outstandingPrefetches = 0;
        std::uint64_t residentChunks = 0;
    };

    /** (Re)build engine state mirrors for the page table's ranges. */
    void syncRanges();

    /** Make room for @p bytes, evicting (and writing back) LRU chunks. */
    Tick ensureCapacity(Bytes bytes, Tick now);

    /** Evict one LRU victim (with dirty writeback) at @p freeAt. */
    Tick evictOne(Tick freeAt);

    /** Issue one chunk migration on the link; updates all state. */
    Tick migrateChunk(std::size_t rangeId, std::uint64_t chunk, Tick when,
                      TransferKind kind, bool speculative);

    /**
     * @{ Sealed-variant prefetcher dispatch. The model set is closed
     * (PrefetcherKind), so the per-access feedback and miss hooks
     * switch on the tag sealed at construction and call the concrete
     * classes' non-virtual methods directly — no vtable hop, and the
     * miss path fills a reused candidate buffer instead of returning
     * a fresh vector per fault.
     */
    void prefetchUseful(std::size_t rangeId);
    void prefetchWasted(std::size_t rangeId);

    /**
     * Candidates for a demand miss; valid until the next call. Only
     * prefetchOnMiss() writes candidateBuf_, and nothing downstream
     * of a candidate migration (evictOne's waste feedback included)
     * re-enters it, so callers may iterate the reference in place.
     */
    const std::vector<PrefetchCandidate> &
    prefetchOnMiss(std::size_t rangeId, std::uint64_t chunk,
                   std::uint64_t chunkCount);
    /** @} */

    UvmConfig cfg_;
    PageTable &table_;
    DeviceMemory &devMem_;
    PcieLink &link_;
    FaultHandler faultHandler_;
    std::unique_ptr<Prefetcher> prefetcher_;

    /** Sealed at construction: tag + concrete view of prefetcher_. */
    PrefetcherKind pfKind_;
    NonePrefetcher *pfNone_ = nullptr;
    StreamPrefetcher *pfStream_ = nullptr;
    TreePrefetcher *pfTree_ = nullptr;

    /** Reused by prefetchOnMiss(); never shrinks across faults. */
    std::vector<PrefetchCandidate> candidateBuf_;

    std::vector<RangeState> rangeState_;
    Tick jobTransferBusy_ = 0;
    Tick latestReady_ = 0;
    std::uint64_t jobFaults_ = 0;

    Tracer *tracer_ = nullptr;
    std::uint32_t faultLane_ = 0;
    std::uint32_t prefetchLane_ = 0;
    std::uint32_t migrateLane_ = 0;
    Injector *inject_ = nullptr;
    Watchdog *watchdog_ = nullptr;
};

} // namespace uvmasync

#endif // UVMASYNC_XFER_MIGRATION_ENGINE_HH
