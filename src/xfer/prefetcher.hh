/**
 * @file
 * UVM driver prefetcher models.
 *
 * On a demand miss the driver may speculatively migrate additional
 * chunks. How useful those speculations are depends on the access
 * pattern's regularity — the mechanism behind the paper's "regular
 * workloads benefit from UVM (with prefetch), irregular ones do not"
 * takeaway. Three models are provided:
 *
 *  - NonePrefetcher: plain demand paging (the `uvm` configuration).
 *  - StreamPrefetcher: fixed next-N-chunks lookahead.
 *  - TreePrefetcher: Nvidia-style density prefetcher whose lookahead
 *    doubles on a hit streak and collapses on a useless prediction.
 */

#ifndef UVMASYNC_XFER_PREFETCHER_HH
#define UVMASYNC_XFER_PREFETCHER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "sim/sim_object.hh"

namespace uvmasync
{

/** A predicted chunk to migrate speculatively. */
struct PrefetchCandidate
{
    std::size_t rangeId;
    std::uint64_t chunkIndex;
};

/** Factory/sealed-variant tag for the three models. */
enum class PrefetcherKind
{
    None,
    Stream,
    Tree,
};

/**
 * Prefetcher interface. Implementations are stateful per managed
 * range (tracked by rangeId) and must be reset between runs.
 *
 * The model set is sealed: every implementation is one of the three
 * `final` classes below and carries its PrefetcherKind tag. Hot
 * per-access callers (MigrationEngine) dispatch on the tag to the
 * concrete classes' non-virtual `note*`/`appendCandidates` methods —
 * inlineable calls with no vtable hop and no per-miss vector
 * allocation — while the virtual interface stays for tests and
 * ablation drivers that want polymorphism on a cold path.
 */
class Prefetcher : public SimObject
{
  public:
    Prefetcher(std::string name, PrefetcherKind kind)
        : SimObject(std::move(name)), kind_(kind)
    {
    }

    /** Sealed-variant tag of the concrete model. */
    PrefetcherKind kind() const { return kind_; }

    /**
     * React to a demand miss on (@p rangeId, @p chunkIndex) of a range
     * with @p chunkCount chunks; return chunks to migrate
     * speculatively (may be empty). Already-resident candidates are
     * filtered by the caller.
     */
    virtual std::vector<PrefetchCandidate>
    onDemandMiss(std::size_t rangeId, std::uint64_t chunkIndex,
                 std::uint64_t chunkCount) = 0;

    /** Feedback: a previously prefetched chunk was actually used. */
    virtual void onUsefulPrefetch(std::size_t rangeId) = 0;

    /** Feedback: a prefetched chunk was evicted unused. */
    virtual void onWastedPrefetch(std::size_t rangeId) = 0;

    /** Forget per-range state (new run). */
    virtual void resetState() = 0;

    std::uint64_t issued() const { return issued_; }
    std::uint64_t useful() const { return useful_; }
    std::uint64_t wasted() const { return wasted_; }

    /** Fraction of issued prefetches confirmed useful. */
    double accuracy() const;

    void exportStats(StatMap &out) const override;
    void resetStats() override;

  protected:
    void recordIssued(std::size_t n) { issued_ += n; }
    void recordUseful() { ++useful_; }
    void recordWasted() { ++wasted_; }

  private:
    PrefetcherKind kind_;
    std::uint64_t issued_ = 0;
    std::uint64_t useful_ = 0;
    std::uint64_t wasted_ = 0;
};

/** No speculation: plain demand paging. */
class NonePrefetcher final : public Prefetcher
{
  public:
    explicit NonePrefetcher(std::string name)
        : Prefetcher(std::move(name), PrefetcherKind::None)
    {}

    /** @{ Non-virtual fast path (counters only; no speculation). */
    void noteUseful() { recordUseful(); }
    void noteWasted() { recordWasted(); }
    /** @} */

    std::vector<PrefetchCandidate>
    onDemandMiss(std::size_t, std::uint64_t, std::uint64_t) override
    {
        return {};
    }

    void onUsefulPrefetch(std::size_t) override { noteUseful(); }
    void onWastedPrefetch(std::size_t) override { noteWasted(); }
    void resetState() override {}
};

/** Fixed-distance sequential prefetcher. */
class StreamPrefetcher final : public Prefetcher
{
  public:
    StreamPrefetcher(std::string name, std::uint32_t distance);

    /** @{ Non-virtual fast path (same behaviour as the overrides). */
    void noteUseful() { recordUseful(); }
    void noteWasted() { recordWasted(); }

    /**
     * Append this miss's candidates to @p out (not cleared) and
     * record them issued — the allocation-free form of
     * onDemandMiss(), sharing its exact candidate order.
     */
    void appendCandidates(std::size_t rangeId,
                          std::uint64_t chunkIndex,
                          std::uint64_t chunkCount,
                          std::vector<PrefetchCandidate> &out);
    /** @} */

    std::vector<PrefetchCandidate>
    onDemandMiss(std::size_t rangeId, std::uint64_t chunkIndex,
                 std::uint64_t chunkCount) override;

    void onUsefulPrefetch(std::size_t) override { noteUseful(); }
    void onWastedPrefetch(std::size_t) override { noteWasted(); }
    void resetState() override {}

  private:
    std::uint32_t distance_;
};

/**
 * Density/tree prefetcher: lookahead grows geometrically while
 * predictions prove useful and collapses to the minimum on waste,
 * approximating the UVM driver's 64K->2M block promotion behaviour.
 */
class TreePrefetcher final : public Prefetcher
{
  public:
    TreePrefetcher(std::string name, std::uint32_t minDistance = 2,
                   std::uint32_t maxDistance = 32);

    /** @{ Non-virtual fast path (same behaviour as the overrides). */
    void noteUseful(std::size_t rangeId);
    void noteWasted(std::size_t rangeId);
    void appendCandidates(std::size_t rangeId,
                          std::uint64_t chunkIndex,
                          std::uint64_t chunkCount,
                          std::vector<PrefetchCandidate> &out);
    /** @} */

    std::vector<PrefetchCandidate>
    onDemandMiss(std::size_t rangeId, std::uint64_t chunkIndex,
                 std::uint64_t chunkCount) override;

    void onUsefulPrefetch(std::size_t rangeId) override;
    void onWastedPrefetch(std::size_t rangeId) override;
    void resetState() override { distance_.clear(); }

  private:
    std::uint32_t minDistance_;
    std::uint32_t maxDistance_;
    std::unordered_map<std::size_t, std::uint32_t> distance_;
};

std::unique_ptr<Prefetcher> makePrefetcher(PrefetcherKind kind,
                                           std::string name);

} // namespace uvmasync

#endif // UVMASYNC_XFER_PREFETCHER_HH
