/**
 * @file
 * GPU far-fault servicing model.
 *
 * When an SM touches a non-resident managed page it raises a far
 * fault; the UVM driver collects faults from the fault buffer and
 * services them in batches (cf. Kim et al., ASPLOS'20, cited by the
 * paper). The handler therefore amortises a large base latency over
 * the faults that arrive within a batching window; the per-fault
 * marginal cost is much smaller.
 */

#ifndef UVMASYNC_XFER_FAULT_HANDLER_HH
#define UVMASYNC_XFER_FAULT_HANDLER_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "sim/sim_object.hh"
#include "trace/trace.hh"

namespace uvmasync
{

class Injector;

/** Tunables of the fault servicing path. */
struct FaultHandlerConfig
{
    /** Driver work to drain and preprocess one fault batch. */
    Tick batchBaseLatency = microseconds(45);

    /** Marginal cost per fault inside a batch. */
    Tick perFaultLatency = nanoseconds(2500);

    /** Faults arriving within this window of the batch head join it. */
    Tick batchWindow = microseconds(20);

    /** Maximum faults serviced per batch. */
    std::uint32_t maxBatchSize = 256;
};

/**
 * Batched far-fault servicing. Callers report a fault's arrival time
 * and receive the tick at which the driver has resolved the fault and
 * the migration may be queued on the link.
 */
class FaultHandler : public SimObject
{
  public:
    FaultHandler(std::string name, FaultHandlerConfig cfg);

    const FaultHandlerConfig &config() const { return cfg_; }
    void setConfig(const FaultHandlerConfig &cfg) { cfg_ = cfg; }

    /**
     * Service one fault arriving at @p now.
     * @return tick at which driver processing of this fault is done.
     */
    Tick service(Tick now);

    std::uint64_t faults() const { return faults_; }
    std::uint64_t batches() const { return batches_; }

    /** Mean faults per batch so far (0 when no batch yet). */
    double meanBatchSize() const;

    /** Forget the timeline (new run). */
    void reset();

    /**
     * Record one span per serviced batch ([head, completion], batch
     * size in arg) on @p lane of @p tracer. A batch's span is emitted
     * when the next batch opens; call flushTrace() at end of run to
     * emit the final one. Pass nullptr to detach.
     */
    void
    setTrace(Tracer *tracer, std::uint32_t lane = 0)
    {
        tracer_ = tracer;
        traceLane_ = lane;
    }

    /** Emit the still-open batch's span, if any. */
    void flushTrace();

    /**
     * Attach the fault injector (null detaches): shrinks the
     * effective fault-buffer capacity (batch overflow) and delays the
     * servicing of newly opened batches.
     */
    void setInjector(Injector *inject) { inject_ = inject; }

    void exportStats(StatMap &out) const override;
    void resetStats() override;

  private:
    void closeBatchTrace();

    FaultHandlerConfig cfg_;

    Tick batchHeadTime_ = 0;
    std::uint32_t batchCount_ = 0;
    Tick handlerFreeAt_ = 0;
    Tick lastDone_ = 0;

    std::uint64_t faults_ = 0;
    std::uint64_t batches_ = 0;

    Tracer *tracer_ = nullptr;
    std::uint32_t traceLane_ = 0;
    Injector *inject_ = nullptr;
};

} // namespace uvmasync

#endif // UVMASYNC_XFER_FAULT_HANDLER_HH
