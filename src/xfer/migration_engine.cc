#include "xfer/migration_engine.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "inject/injector.hh"
#include "sim/event_queue.hh"

namespace uvmasync
{

MigrationEngine::MigrationEngine(std::string name, UvmConfig cfg,
                                 PageTable &table, DeviceMemory &devMem,
                                 PcieLink &link)
    : SimObject(std::move(name)), cfg_(cfg), table_(table),
      devMem_(devMem), link_(link),
      faultHandler_(this->name() + ".faults", cfg.fault),
      prefetcher_(makePrefetcher(cfg.demandPrefetcher,
                                 this->name() + ".prefetcher")),
      pfKind_(prefetcher_->kind())
{
    // Seal the concrete view once; the hot hooks below dispatch on
    // pfKind_ without touching the vtable again.
    switch (pfKind_) {
      case PrefetcherKind::None:
        pfNone_ = static_cast<NonePrefetcher *>(prefetcher_.get());
        break;
      case PrefetcherKind::Stream:
        pfStream_ = static_cast<StreamPrefetcher *>(prefetcher_.get());
        break;
      case PrefetcherKind::Tree:
        pfTree_ = static_cast<TreePrefetcher *>(prefetcher_.get());
        break;
    }
}

void
MigrationEngine::prefetchUseful(std::size_t rangeId)
{
    switch (pfKind_) {
      case PrefetcherKind::None: pfNone_->noteUseful(); break;
      case PrefetcherKind::Stream: pfStream_->noteUseful(); break;
      case PrefetcherKind::Tree: pfTree_->noteUseful(rangeId); break;
    }
}

void
MigrationEngine::prefetchWasted(std::size_t rangeId)
{
    switch (pfKind_) {
      case PrefetcherKind::None: pfNone_->noteWasted(); break;
      case PrefetcherKind::Stream: pfStream_->noteWasted(); break;
      case PrefetcherKind::Tree: pfTree_->noteWasted(rangeId); break;
    }
}

const std::vector<PrefetchCandidate> &
MigrationEngine::prefetchOnMiss(std::size_t rangeId, std::uint64_t chunk,
                                std::uint64_t chunkCount)
{
    candidateBuf_.clear();
    switch (pfKind_) {
      case PrefetcherKind::None:
        break;
      case PrefetcherKind::Stream:
        pfStream_->appendCandidates(rangeId, chunk, chunkCount,
                                    candidateBuf_);
        break;
      case PrefetcherKind::Tree:
        pfTree_->appendCandidates(rangeId, chunk, chunkCount,
                                  candidateBuf_);
        break;
    }
    return candidateBuf_;
}

void
MigrationEngine::beginJob()
{
    for (std::size_t r = 0; r < table_.rangeCount(); ++r)
        table_.range(r).reset();
    devMem_.clear();
    // Precise LRU bookkeeping only matters when the working set can
    // oversubscribe the device — or when injected eviction storms
    // need victims to thrash regardless of occupancy.
    Bytes managed = 0;
    for (std::size_t r = 0; r < table_.rangeCount(); ++r)
        managed += table_.range(r).bytes();
    devMem_.setLruTracking(managed > devMem_.capacity() * 9 / 10 ||
                           (inject_ && inject_->stormsEnabled()));
    faultHandler_.reset();
    prefetcher_->resetStats();
    rangeState_.clear();
    syncRanges();
    jobTransferBusy_ = 0;
    latestReady_ = 0;
    jobFaults_ = 0;
}

void
MigrationEngine::setTrace(Tracer *tracer, std::uint32_t faultLane,
                          std::uint32_t prefetchLane,
                          std::uint32_t migrateLane)
{
    tracer_ = tracer;
    faultLane_ = faultLane;
    prefetchLane_ = prefetchLane;
    migrateLane_ = migrateLane;
    faultHandler_.setTrace(tracer, faultLane);
}

void
MigrationEngine::flushTrace()
{
    faultHandler_.flushTrace();
}

void
MigrationEngine::setInjector(Injector *inject)
{
    inject_ = inject;
    faultHandler_.setInjector(inject);
}

void
MigrationEngine::syncRanges()
{
    while (rangeState_.size() < table_.rangeCount()) {
        const ManagedRange &range = table_.range(rangeState_.size());
        RangeState state;
        state.readyAt.assign(range.chunkCount(), maxTick);
        state.prefetched.assign(range.chunkCount(), false);
        state.demanded.assign(range.chunkCount(), false);
        rangeState_.push_back(std::move(state));
    }
}

Tick
MigrationEngine::evictOne(Tick freeAt)
{
    ResidentChunk victim = devMem_.evictVictim();
    ManagedRange &range = table_.range(victim.rangeId);
    RangeState &state = rangeState_[victim.rangeId];
    if (range.dirty(victim.chunkIndex)) {
        Occupancy occ = link_.transfer(freeAt, victim.bytes,
                                       Direction::DeviceToHost,
                                       TransferKind::Writeback);
        jobTransferBusy_ += occ.duration();
        table_.recordMigration(false, victim.bytes);
        freeAt = std::max(freeAt, occ.end);
        range.setDirty(victim.chunkIndex, false);
    }
    if (state.prefetched[victim.chunkIndex] &&
        !state.demanded[victim.chunkIndex]) {
        prefetchWasted(victim.rangeId);
        if (state.outstandingPrefetches > 0)
            --state.outstandingPrefetches;
        if (tracer_) {
            tracer_->instant(TraceCategory::Prefetch,
                             TraceName::PrefetchWaste,
                             prefetchLane_, freeAt,
                             victim.rangeId);
        }
    }
    if (tracer_) {
        tracer_->instant(TraceCategory::Migration, TraceName::Evict,
                         migrateLane_, freeAt, victim.bytes);
    }
    range.setState(victim.chunkIndex, ChunkState::HostOnly);
    state.readyAt[victim.chunkIndex] = maxTick;
    state.prefetched[victim.chunkIndex] = false;
    UVMASYNC_ASSERT(state.residentChunks > 0,
                    "resident chunk accounting underflow");
    --state.residentChunks;
    // Clean evictions cost no simulated time, so a storm of them is
    // invisible to every time-based bound; report each one so the
    // watchdog's stall detector can see the livelock.
    if (watchdog_)
        watchdog_->onEvent(freeAt);
    return freeAt;
}

Tick
MigrationEngine::ensureCapacity(Bytes bytes, Tick now)
{
    Tick freeAt = now;
    while (!devMem_.fits(bytes))
        freeAt = evictOne(freeAt);
    return freeAt;
}

Tick
MigrationEngine::migrateChunk(std::size_t rangeId, std::uint64_t chunk,
                              Tick when, TransferKind kind,
                              bool speculative)
{
    ManagedRange &range = table_.range(rangeId);
    RangeState &state = rangeState_[rangeId];
    Bytes bytes = range.chunkSize(chunk);

    if (inject_) {
        // Driver backpressure: the migration queue throttles this
        // request before it reaches the link.
        when += inject_->migrationBackpressure(when);
        // Eviction storm: the driver thrashes resident chunks out
        // first; their writebacks delay this migration, and the
        // thrashed chunks must be re-migrated on their next touch.
        std::uint32_t storm = inject_->drawEvictionStorm();
        if (storm > 0) {
            Tick stormFreeAt = when;
            std::uint32_t evicted = 0;
            while (evicted < storm && devMem_.lruTracking() &&
                   devMem_.residentBytes() > 0) {
                stormFreeAt = evictOne(stormFreeAt);
                ++evicted;
            }
            if (evicted > 0) {
                when = std::max(when, stormFreeAt);
                inject_->noteEvictionStorm(when, evicted);
            }
        }
    }

    Tick start = ensureCapacity(bytes, when);
    Occupancy occ = link_.transfer(start, bytes,
                                   Direction::HostToDevice, kind);
    jobTransferBusy_ += occ.duration();
    table_.recordMigration(true, bytes);

    range.setState(chunk, ChunkState::DeviceResident);
    state.readyAt[chunk] = occ.end;
    state.prefetched[chunk] = speculative;
    if (speculative)
        ++state.outstandingPrefetches;
    ++state.residentChunks;
    latestReady_ = std::max(latestReady_, occ.end);
    devMem_.insert(ResidentChunk{rangeId, chunk, bytes});
    return occ.end;
}

Tick
MigrationEngine::requestChunk(std::size_t rangeId, std::uint64_t chunk,
                              Tick now)
{
    syncRanges();
    UVMASYNC_ASSERT(rangeId < rangeState_.size(),
                    "request on unknown range %zu", rangeId);
    ManagedRange &range = table_.range(rangeId);
    RangeState &state = rangeState_[rangeId];
    UVMASYNC_ASSERT(chunk < range.chunkCount(),
                    "%s: chunk %llu out of range", range.name().c_str(),
                    static_cast<unsigned long long>(chunk));

    if (range.state(chunk) == ChunkState::DeviceResident) {
        devMem_.touch(rangeId, chunk);
        Tick ready = state.readyAt[chunk];
        if (!state.demanded[chunk] && state.prefetched[chunk]) {
            prefetchUseful(rangeId);
            if (state.outstandingPrefetches > 0)
                --state.outstandingPrefetches;
            if (tracer_) {
                tracer_->instant(TraceCategory::Prefetch,
                                 TraceName::PrefetchHit, prefetchLane_,
                                 now, rangeId);
            }
        }
        state.demanded[chunk] = true;
        return std::max(now, ready);
    }

    // Far fault: driver batching, then migration over the link.
    table_.recordFault();
    ++jobFaults_;
    if (tracer_) {
        tracer_->instant(TraceCategory::Fault, TraceName::FaultRaise,
                         faultLane_, now, rangeId);
    }
    if (state.outstandingPrefetches > 0) {
        // The speculation failed to cover this demand; cool down.
        prefetchWasted(rangeId);
        --state.outstandingPrefetches;
        if (tracer_) {
            tracer_->instant(TraceCategory::Prefetch,
                             TraceName::PrefetchWaste, prefetchLane_,
                             now, rangeId);
        }
    }
    Tick serviced = faultHandler_.service(now);
    Tick ready = migrateChunk(rangeId, chunk, serviced,
                              TransferKind::DemandMigration,
                              /*speculative=*/false);
    state.demanded[chunk] = true;

    // Let the driver prefetcher ride along on the fault. Index loop:
    // candidateBuf_ is stable during the migrations (see
    // prefetchOnMiss), but an index keeps that independent of any
    // future reallocation.
    const std::vector<PrefetchCandidate> &candidates =
        prefetchOnMiss(rangeId, chunk, range.chunkCount());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const PrefetchCandidate &cand = candidates[i];
        ManagedRange &crange = table_.range(cand.rangeId);
        if (crange.state(cand.chunkIndex) == ChunkState::DeviceResident)
            continue;
        migrateChunk(cand.rangeId, cand.chunkIndex, ready,
                     TransferKind::DemandMigration,
                     /*speculative=*/true);
        if (tracer_) {
            tracer_->instant(TraceCategory::Prefetch,
                             TraceName::PrefetchIssue, prefetchLane_,
                             ready, /*chunks=*/1);
        }
    }
    return ready;
}

void
MigrationEngine::populateOnDevice(std::size_t rangeId)
{
    syncRanges();
    UVMASYNC_ASSERT(rangeId < rangeState_.size(),
                    "populate on unknown range %zu", rangeId);
    ManagedRange &range = table_.range(rangeId);
    RangeState &state = rangeState_[rangeId];
    for (std::uint64_t c = 0; c < range.chunkCount(); ++c) {
        if (range.state(c) == ChunkState::DeviceResident)
            continue;
        // An oversubscribing allocation only materialises up to the
        // device capacity; the rest stays host-side and will be
        // demand-migrated (with eviction) on first GPU touch.
        if (!devMem_.fits(range.chunkSize(c)))
            break;
        range.setState(c, ChunkState::DeviceResident);
        state.readyAt[c] = 0;
        ++state.residentChunks;
        devMem_.insert(ResidentChunk{rangeId, c, range.chunkSize(c)});
    }
}

Occupancy
MigrationEngine::prefetchRange(std::size_t rangeId, Tick now,
                               bool churnOk)
{
    syncRanges();
    UVMASYNC_ASSERT(rangeId < rangeState_.size(),
                    "prefetch on unknown range %zu", rangeId);
    ManagedRange &range = table_.range(rangeId);
    RangeState &state = rangeState_[rangeId];

    Tick start = now + cfg_.prefetchCallOverhead;

    // Gather the bytes that actually need to move.
    Bytes pending = 0;
    for (std::uint64_t c = 0; c < range.chunkCount(); ++c) {
        if (range.state(c) != ChunkState::DeviceResident)
            pending += range.chunkSize(c);
    }

    if (pending == 0) {
        // Redundant prefetch: the driver still revalidates mappings
        // and re-migrates recently dirtied pages (consecutive kernels
        // sharing a buffer — the `nw` effect).
        auto churn = static_cast<Bytes>(
            std::ceil(static_cast<double>(range.bytes()) *
                      cfg_.redundantPrefetchChurn));
        if (!churnOk || churn == 0)
            return Occupancy{start, start};
        Occupancy occ = link_.transfer(start, churn,
                                       Direction::HostToDevice,
                                       TransferKind::BulkPrefetch);
        jobTransferBusy_ += occ.duration();
        if (tracer_) {
            tracer_->instant(TraceCategory::Prefetch,
                             TraceName::PrefetchChurn, prefetchLane_,
                             start, churn);
        }
        return occ;
    }

    // A prefetch larger than the device can never complete; the
    // driver migrates (evicting LRU pages) until the allocation's
    // resident share saturates capacity. Model: move at most what
    // eviction can make room for and leave the tail host-side.
    Bytes movable = std::min<Bytes>(pending, devMem_.capacity());
    Tick begin = ensureCapacity(movable, start);
    Occupancy occ = link_.transfer(begin, movable,
                                   Direction::HostToDevice,
                                   TransferKind::BulkPrefetch);
    jobTransferBusy_ += occ.duration();

    Bytes placed = 0;
    for (std::uint64_t c = 0; c < range.chunkCount(); ++c) {
        if (range.state(c) == ChunkState::DeviceResident)
            continue;
        if (placed + range.chunkSize(c) > movable)
            break;
        placed += range.chunkSize(c);
        table_.recordMigration(true, range.chunkSize(c));
        range.setState(c, ChunkState::DeviceResident);
        state.readyAt[c] = occ.end;
        state.prefetched[c] = false; // explicit, not speculative
        ++state.residentChunks;
        devMem_.insert(ResidentChunk{rangeId, c, range.chunkSize(c)});
        latestReady_ = std::max(latestReady_, occ.end);
    }
    return occ;
}

void
MigrationEngine::markRangeDirty(std::size_t rangeId)
{
    syncRanges();
    ManagedRange &range = table_.range(rangeId);
    for (std::uint64_t c = 0; c < range.chunkCount(); ++c) {
        if (range.state(c) == ChunkState::DeviceResident)
            range.setDirty(c, true);
    }
}

Tick
MigrationEngine::writebackDirty(std::size_t rangeId, Tick now)
{
    syncRanges();
    ManagedRange &range = table_.range(rangeId);
    Bytes dirtyBytes = 0;
    for (std::uint64_t c = 0; c < range.chunkCount(); ++c) {
        if (range.state(c) == ChunkState::DeviceResident &&
            range.dirty(c)) {
            dirtyBytes += range.chunkSize(c);
            range.setDirty(c, false);
        }
    }
    if (dirtyBytes == 0)
        return now;
    Occupancy occ = link_.transfer(now, dirtyBytes,
                                   Direction::DeviceToHost,
                                   TransferKind::Writeback);
    jobTransferBusy_ += occ.duration();
    table_.recordMigration(false, dirtyBytes);
    return occ.end;
}

Tick
MigrationEngine::rangeReadyAt(std::size_t rangeId) const
{
    UVMASYNC_ASSERT(rangeId < rangeState_.size(),
                    "query on unknown range %zu", rangeId);
    Tick latest = 0;
    for (Tick t : rangeState_[rangeId].readyAt) {
        if (t == maxTick)
            return maxTick;
        latest = std::max(latest, t);
    }
    return latest;
}

bool
MigrationEngine::rangeFullyResident(std::size_t rangeId) const
{
    return rangeReadyAt(rangeId) != maxTick;
}

bool
MigrationEngine::allRangesResident() const
{
    for (std::size_t r = 0; r < rangeState_.size(); ++r) {
        if (rangeState_[r].residentChunks !=
            rangeState_[r].readyAt.size())
            return false;
    }
    return rangeState_.size() == table_.rangeCount();
}

std::uint64_t
MigrationEngine::unusedPrefetches() const
{
    std::uint64_t total = 0;
    for (const RangeState &state : rangeState_)
        total += state.outstandingPrefetches;
    return total;
}

void
MigrationEngine::exportStats(StatMap &out) const
{
    putStat(out, "job_transfer_busy_ps",
            static_cast<double>(jobTransferBusy_));
    putStat(out, "job_faults", static_cast<double>(jobFaults_));
    putStat(out, "unused_prefetches",
            static_cast<double>(unusedPrefetches()));
    faultHandler_.exportStats(out);
    prefetcher_->exportStats(out);
}

void
MigrationEngine::resetStats()
{
    jobTransferBusy_ = 0;
    jobFaults_ = 0;
    faultHandler_.resetStats();
    prefetcher_->resetStats();
}

} // namespace uvmasync
