#include "xfer/fault_handler.hh"

#include <algorithm>
#include <utility>

#include "inject/injector.hh"

namespace uvmasync
{

FaultHandler::FaultHandler(std::string name, FaultHandlerConfig cfg)
    : SimObject(std::move(name)), cfg_(cfg)
{
}

Tick
FaultHandler::service(Tick now)
{
    ++faults_;

    // An injected fault-buffer overflow shrinks the effective batch
    // capacity below the configured one, forcing early batch splits.
    std::uint32_t maxBatch = cfg_.maxBatchSize;
    if (inject_)
        maxBatch = inject_->clampBatchSize(maxBatch);

    bool joins_batch = batches_ > 0 &&
                       now <= batchHeadTime_ + cfg_.batchWindow &&
                       batchCount_ < maxBatch;
    if (!joins_batch) {
        // This batch opens only because the injected capacity filled
        // up — the configured handler would still have batched it.
        bool overflowed = inject_ && batches_ > 0 &&
                          now <= batchHeadTime_ + cfg_.batchWindow &&
                          batchCount_ >= maxBatch &&
                          maxBatch < cfg_.maxBatchSize;
        // Open a new batch headed by this fault; it cannot start
        // processing before the handler finished the previous batch.
        closeBatchTrace();
        batchHeadTime_ = std::max(now, handlerFreeAt_);
        if (inject_) {
            if (overflowed)
                batchHeadTime_ += inject_->overflowPenalty(batchHeadTime_);
            batchHeadTime_ += inject_->batchOpenDelay(batchHeadTime_);
        }
        batchCount_ = 0;
        ++batches_;
    }
    ++batchCount_;

    // The whole batch completes base + n*perFault after its head; a
    // fault in the batch resolves at the batch completion time.
    Tick done = batchHeadTime_ + cfg_.batchBaseLatency +
                static_cast<Tick>(batchCount_) * cfg_.perFaultLatency;
    handlerFreeAt_ = std::max(handlerFreeAt_, done);
    lastDone_ = done;
    return done;
}

void
FaultHandler::closeBatchTrace()
{
    if (tracer_ && batchCount_ > 0) {
        tracer_->span(TraceCategory::Fault, TraceName::FaultBatch,
                      traceLane_, batchHeadTime_, lastDone_,
                      batchCount_);
    }
}

void
FaultHandler::flushTrace()
{
    closeBatchTrace();
    batchCount_ = 0;
}

double
FaultHandler::meanBatchSize() const
{
    return batches_ ? static_cast<double>(faults_) /
                      static_cast<double>(batches_)
                    : 0.0;
}

void
FaultHandler::reset()
{
    batchHeadTime_ = 0;
    batchCount_ = 0;
    handlerFreeAt_ = 0;
    lastDone_ = 0;
    faults_ = 0;
    batches_ = 0;
}

void
FaultHandler::exportStats(StatMap &out) const
{
    putStat(out, "faults", static_cast<double>(faults_));
    putStat(out, "batches", static_cast<double>(batches_));
    putStat(out, "mean_batch_size", meanBatchSize());
}

void
FaultHandler::resetStats()
{
    reset();
}

} // namespace uvmasync
