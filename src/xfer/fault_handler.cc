#include "xfer/fault_handler.hh"

#include <algorithm>
#include <utility>

namespace uvmasync
{

FaultHandler::FaultHandler(std::string name, FaultHandlerConfig cfg)
    : SimObject(std::move(name)), cfg_(cfg)
{
}

Tick
FaultHandler::service(Tick now)
{
    ++faults_;

    bool joins_batch = batches_ > 0 &&
                       now <= batchHeadTime_ + cfg_.batchWindow &&
                       batchCount_ < cfg_.maxBatchSize;
    if (!joins_batch) {
        // Open a new batch headed by this fault; it cannot start
        // processing before the handler finished the previous batch.
        closeBatchTrace();
        batchHeadTime_ = std::max(now, handlerFreeAt_);
        batchCount_ = 0;
        ++batches_;
    }
    ++batchCount_;

    // The whole batch completes base + n*perFault after its head; a
    // fault in the batch resolves at the batch completion time.
    Tick done = batchHeadTime_ + cfg_.batchBaseLatency +
                static_cast<Tick>(batchCount_) * cfg_.perFaultLatency;
    handlerFreeAt_ = std::max(handlerFreeAt_, done);
    lastDone_ = done;
    return done;
}

void
FaultHandler::closeBatchTrace()
{
    if (tracer_ && batchCount_ > 0) {
        tracer_->span(TraceCategory::Fault, TraceName::FaultBatch,
                      traceLane_, batchHeadTime_, lastDone_,
                      batchCount_);
    }
}

void
FaultHandler::flushTrace()
{
    closeBatchTrace();
    batchCount_ = 0;
}

double
FaultHandler::meanBatchSize() const
{
    return batches_ ? static_cast<double>(faults_) /
                      static_cast<double>(batches_)
                    : 0.0;
}

void
FaultHandler::reset()
{
    batchHeadTime_ = 0;
    batchCount_ = 0;
    handlerFreeAt_ = 0;
    lastDone_ = 0;
    faults_ = 0;
    batches_ = 0;
}

void
FaultHandler::exportStats(StatMap &out) const
{
    putStat(out, "faults", static_cast<double>(faults_));
    putStat(out, "batches", static_cast<double>(batches_));
    putStat(out, "mean_batch_size", meanBatchSize());
}

void
FaultHandler::resetStats()
{
    reset();
}

} // namespace uvmasync
