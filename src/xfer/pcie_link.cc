#include "xfer/pcie_link.hh"

#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "inject/injector.hh"
#include "mem/host_memory.hh"
#include "sim/event_queue.hh"

namespace uvmasync
{

const char *
transferKindName(TransferKind k)
{
    switch (k) {
      case TransferKind::PageableCopy: return "pageable_copy";
      case TransferKind::PinnedCopy: return "pinned_copy";
      case TransferKind::DemandMigration: return "demand_migration";
      case TransferKind::BulkPrefetch: return "bulk_prefetch";
      case TransferKind::Writeback: return "writeback";
    }
    panic("unknown transfer kind %d", static_cast<int>(k));
}

PcieLink::PcieLink(std::string name, PcieConfig cfg)
    : SimObject(std::move(name)), cfg_(cfg),
      h2d_(this->name() + ".h2d", cfg.rawBandwidth),
      d2h_(this->name() + ".d2h", cfg.rawBandwidth)
{
}

Occupancy
PcieLink::transfer(Tick now, Bytes bytes, Direction dir,
                   TransferKind kind, double hostFactor)
{
    // Injected transient failures delay the issue tick (retry with
    // exponential backoff) or throw TransferAborted when the budget
    // runs out; rolled before anything else so the slow-page and
    // degradation windows see the tick the transfer actually issues.
    if (inject_) {
        now = inject_->applyTransferFaults(now, bytes,
                                           transferKindName(kind));
    }
    // Host-DIMM slow-page windows slow the host side of the path the
    // same way DRAM placement effects do.
    if (hostPath_)
        hostFactor *= hostPath_->transferPathFactor(now);
    UVMASYNC_ASSERT(hostFactor > 0.0 && hostFactor <= 1.0,
                    "host factor %f out of (0, 1]", hostFactor);
    double eff = cfg_.efficiency[static_cast<std::size_t>(kind)];
    UVMASYNC_ASSERT(eff > 0.0 && eff <= 1.0,
                    "efficiency %f out of (0, 1] for %s", eff,
                    transferKindName(kind));
    // Model reduced effective bandwidth by scaling the time (i.e. the
    // bytes pushed through the raw-rate resource); the per-kind setup
    // latency is folded in as equivalent bytes.
    double scale = 1.0 / (eff * hostFactor);
    // Link degradation/stutter windows: sampled at issue time, so a
    // transfer keeps the mode the link was in when it queued.
    double degrade = inject_ ? inject_->degradeFactor(now) : 1.0;
    scale *= degrade;
    Tick latency =
        cfg_.perTransferLatency[static_cast<std::size_t>(kind)];
    double latencyBytes = static_cast<double>(latency) *
                          cfg_.rawBandwidth.bytesPerSecond() / 1e12;
    auto scaled = static_cast<Bytes>(
        std::ceil(static_cast<double>(bytes) * scale + latencyBytes));

    kindBytes_[static_cast<std::size_t>(kind)] += bytes;
    const bool h2d = dir == Direction::HostToDevice;
    (h2d ? payloadH2d_ : payloadD2h_) += bytes;
    Occupancy occ = (h2d ? h2d_ : d2h_).acquire(now, scaled);
    if (tracer_) {
        // TraceName's Pcie block mirrors TransferKind order, so the
        // name is a constant offset from the kind.
        auto name = static_cast<TraceName>(
            static_cast<int>(TraceName::PageableCopy) +
            static_cast<int>(kind));
        tracer_->span(TraceCategory::Pcie, name,
                      h2d ? h2dLane_ : d2hLane_, occ.start, occ.end,
                      bytes, occ.start - now);
    }
    if (inject_ && degrade > 1.0)
        inject_->noteDegradedTransfer(occ.start, occ.end, degrade, h2d);
    if (watchdog_)
        watchdog_->onEvent(occ.end);
    return occ;
}

Tick
PcieLink::nextFree(Tick now, Direction dir) const
{
    return dir == Direction::HostToDevice ? h2d_.nextFree(now)
                                          : d2h_.nextFree(now);
}

Bytes
PcieLink::bytesMoved(Direction dir) const
{
    return dir == Direction::HostToDevice ? payloadH2d_ : payloadD2h_;
}

Bytes
PcieLink::bytesByKind(TransferKind kind) const
{
    return kindBytes_[static_cast<std::size_t>(kind)];
}

Tick
PcieLink::busyTime(Direction dir) const
{
    return dir == Direction::HostToDevice ? h2d_.busyTime()
                                          : d2h_.busyTime();
}

void
PcieLink::reset()
{
    h2d_.reset();
    d2h_.reset();
    kindBytes_.fill(0);
    payloadH2d_ = 0;
    payloadD2h_ = 0;
}

void
PcieLink::exportStats(StatMap &out) const
{
    putStat(out, "bytes_h2d", static_cast<double>(payloadH2d_));
    putStat(out, "bytes_d2h", static_cast<double>(payloadD2h_));
    putStat(out, "busy_h2d_ps", static_cast<double>(h2d_.busyTime()));
    putStat(out, "busy_d2h_ps", static_cast<double>(d2h_.busyTime()));
    for (std::size_t k = 0; k < numTransferKinds; ++k) {
        putStat(out,
                std::string("bytes_") +
                    transferKindName(static_cast<TransferKind>(k)),
                static_cast<double>(kindBytes_[k]));
    }
}

void
PcieLink::resetStats()
{
    reset();
}

} // namespace uvmasync
