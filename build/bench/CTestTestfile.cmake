# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table1 "/root/repo/build/bench/bench_table1_config")
set_tests_properties(bench_smoke_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table2 "/root/repo/build/bench/bench_table2_programs")
set_tests_properties(bench_smoke_table2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table3 "/root/repo/build/bench/bench_table3_sizes")
set_tests_properties(bench_smoke_table3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig7 "/root/repo/build/bench/bench_fig7_micro")
set_tests_properties(bench_smoke_fig7 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig9 "/root/repo/build/bench/bench_fig9_instmix")
set_tests_properties(bench_smoke_fig9 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
