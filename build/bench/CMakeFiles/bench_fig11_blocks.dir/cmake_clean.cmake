file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_blocks.dir/bench_fig11_blocks.cc.o"
  "CMakeFiles/bench_fig11_blocks.dir/bench_fig11_blocks.cc.o.d"
  "bench_fig11_blocks"
  "bench_fig11_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
