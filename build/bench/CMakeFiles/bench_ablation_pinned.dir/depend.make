# Empty dependencies file for bench_ablation_pinned.
# This may be replaced when dependencies are built.
