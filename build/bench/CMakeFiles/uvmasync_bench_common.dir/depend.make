# Empty dependencies file for uvmasync_bench_common.
# This may be replaced when dependencies are built.
