file(REMOVE_RECURSE
  "libuvmasync_bench_common.a"
)
