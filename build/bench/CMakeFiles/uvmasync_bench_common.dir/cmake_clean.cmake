file(REMOVE_RECURSE
  "CMakeFiles/uvmasync_bench_common.dir/common/bench_common.cc.o"
  "CMakeFiles/uvmasync_bench_common.dir/common/bench_common.cc.o.d"
  "libuvmasync_bench_common.a"
  "libuvmasync_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmasync_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
