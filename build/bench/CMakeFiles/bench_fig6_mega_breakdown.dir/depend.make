# Empty dependencies file for bench_fig6_mega_breakdown.
# This may be replaced when dependencies are built.
