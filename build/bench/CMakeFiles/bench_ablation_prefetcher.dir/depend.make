# Empty dependencies file for bench_ablation_prefetcher.
# This may be replaced when dependencies are built.
