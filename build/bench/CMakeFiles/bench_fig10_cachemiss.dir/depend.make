# Empty dependencies file for bench_fig10_cachemiss.
# This may be replaced when dependencies are built.
