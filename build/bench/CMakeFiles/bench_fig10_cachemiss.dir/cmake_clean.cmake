file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_cachemiss.dir/bench_fig10_cachemiss.cc.o"
  "CMakeFiles/bench_fig10_cachemiss.dir/bench_fig10_cachemiss.cc.o.d"
  "bench_fig10_cachemiss"
  "bench_fig10_cachemiss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cachemiss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
