# Empty dependencies file for bench_fig9_instmix.
# This may be replaced when dependencies are built.
