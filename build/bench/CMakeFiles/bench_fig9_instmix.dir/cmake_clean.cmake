file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_instmix.dir/bench_fig9_instmix.cc.o"
  "CMakeFiles/bench_fig9_instmix.dir/bench_fig9_instmix.cc.o.d"
  "bench_fig9_instmix"
  "bench_fig9_instmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_instmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
