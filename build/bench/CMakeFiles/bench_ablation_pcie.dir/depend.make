# Empty dependencies file for bench_ablation_pcie.
# This may be replaced when dependencies are built.
