file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pcie.dir/bench_ablation_pcie.cc.o"
  "CMakeFiles/bench_ablation_pcie.dir/bench_ablation_pcie.cc.o.d"
  "bench_ablation_pcie"
  "bench_ablation_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
