file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_asyncapi.dir/bench_ablation_asyncapi.cc.o"
  "CMakeFiles/bench_ablation_asyncapi.dir/bench_ablation_asyncapi.cc.o.d"
  "bench_ablation_asyncapi"
  "bench_ablation_asyncapi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_asyncapi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
