# Empty compiler generated dependencies file for bench_ablation_asyncapi.
# This may be replaced when dependencies are built.
