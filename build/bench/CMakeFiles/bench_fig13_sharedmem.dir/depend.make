# Empty dependencies file for bench_fig13_sharedmem.
# This may be replaced when dependencies are built.
