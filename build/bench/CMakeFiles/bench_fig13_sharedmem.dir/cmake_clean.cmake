file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_sharedmem.dir/bench_fig13_sharedmem.cc.o"
  "CMakeFiles/bench_fig13_sharedmem.dir/bench_fig13_sharedmem.cc.o.d"
  "bench_fig13_sharedmem"
  "bench_fig13_sharedmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_sharedmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
