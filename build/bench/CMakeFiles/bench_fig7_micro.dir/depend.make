# Empty dependencies file for bench_fig7_micro.
# This may be replaced when dependencies are built.
