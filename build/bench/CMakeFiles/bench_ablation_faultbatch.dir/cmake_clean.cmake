file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_faultbatch.dir/bench_ablation_faultbatch.cc.o"
  "CMakeFiles/bench_ablation_faultbatch.dir/bench_ablation_faultbatch.cc.o.d"
  "bench_ablation_faultbatch"
  "bench_ablation_faultbatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_faultbatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
