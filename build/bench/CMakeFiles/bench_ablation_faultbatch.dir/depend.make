# Empty dependencies file for bench_ablation_faultbatch.
# This may be replaced when dependencies are built.
