# Empty dependencies file for bench_fig14_interjob.
# This may be replaced when dependencies are built.
