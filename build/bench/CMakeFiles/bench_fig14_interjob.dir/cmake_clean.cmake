file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_interjob.dir/bench_fig14_interjob.cc.o"
  "CMakeFiles/bench_fig14_interjob.dir/bench_fig14_interjob.cc.o.d"
  "bench_fig14_interjob"
  "bench_fig14_interjob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_interjob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
