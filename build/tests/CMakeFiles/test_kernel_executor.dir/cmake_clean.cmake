file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_executor.dir/test_kernel_executor.cc.o"
  "CMakeFiles/test_kernel_executor.dir/test_kernel_executor.cc.o.d"
  "test_kernel_executor"
  "test_kernel_executor.pdb"
  "test_kernel_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
