# Empty compiler generated dependencies file for test_kernel_executor.
# This may be replaced when dependencies are built.
