file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_models.dir/test_gpu_models.cc.o"
  "CMakeFiles/test_gpu_models.dir/test_gpu_models.cc.o.d"
  "test_gpu_models"
  "test_gpu_models.pdb"
  "test_gpu_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
