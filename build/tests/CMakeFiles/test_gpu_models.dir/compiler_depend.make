# Empty compiler generated dependencies file for test_gpu_models.
# This may be replaced when dependencies are built.
