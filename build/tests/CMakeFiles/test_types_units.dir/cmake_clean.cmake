file(REMOVE_RECURSE
  "CMakeFiles/test_types_units.dir/test_types_units.cc.o"
  "CMakeFiles/test_types_units.dir/test_types_units.cc.o.d"
  "test_types_units"
  "test_types_units.pdb"
  "test_types_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_types_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
