# Empty dependencies file for test_types_units.
# This may be replaced when dependencies are built.
