# Empty dependencies file for test_migration_engine.
# This may be replaced when dependencies are built.
