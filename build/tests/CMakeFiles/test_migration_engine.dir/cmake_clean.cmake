file(REMOVE_RECURSE
  "CMakeFiles/test_migration_engine.dir/test_migration_engine.cc.o"
  "CMakeFiles/test_migration_engine.dir/test_migration_engine.cc.o.d"
  "test_migration_engine"
  "test_migration_engine.pdb"
  "test_migration_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_migration_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
