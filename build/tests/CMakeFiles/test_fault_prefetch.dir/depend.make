# Empty dependencies file for test_fault_prefetch.
# This may be replaced when dependencies are built.
