file(REMOVE_RECURSE
  "CMakeFiles/test_fault_prefetch.dir/test_fault_prefetch.cc.o"
  "CMakeFiles/test_fault_prefetch.dir/test_fault_prefetch.cc.o.d"
  "test_fault_prefetch"
  "test_fault_prefetch.pdb"
  "test_fault_prefetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
