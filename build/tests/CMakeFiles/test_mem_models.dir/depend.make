# Empty dependencies file for test_mem_models.
# This may be replaced when dependencies are built.
