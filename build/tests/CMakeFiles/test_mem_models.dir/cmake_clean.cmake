file(REMOVE_RECURSE
  "CMakeFiles/test_mem_models.dir/test_mem_models.cc.o"
  "CMakeFiles/test_mem_models.dir/test_mem_models.cc.o.d"
  "test_mem_models"
  "test_mem_models.pdb"
  "test_mem_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
