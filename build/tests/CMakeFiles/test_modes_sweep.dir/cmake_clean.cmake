file(REMOVE_RECURSE
  "CMakeFiles/test_modes_sweep.dir/test_modes_sweep.cc.o"
  "CMakeFiles/test_modes_sweep.dir/test_modes_sweep.cc.o.d"
  "test_modes_sweep"
  "test_modes_sweep.pdb"
  "test_modes_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modes_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
