# Empty compiler generated dependencies file for test_modes_sweep.
# This may be replaced when dependencies are built.
