file(REMOVE_RECURSE
  "CMakeFiles/test_executor_edge.dir/test_executor_edge.cc.o"
  "CMakeFiles/test_executor_edge.dir/test_executor_edge.cc.o.d"
  "test_executor_edge"
  "test_executor_edge.pdb"
  "test_executor_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
