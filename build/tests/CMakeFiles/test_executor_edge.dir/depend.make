# Empty dependencies file for test_executor_edge.
# This may be replaced when dependencies are built.
