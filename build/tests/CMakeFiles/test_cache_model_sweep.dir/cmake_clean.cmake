file(REMOVE_RECURSE
  "CMakeFiles/test_cache_model_sweep.dir/test_cache_model_sweep.cc.o"
  "CMakeFiles/test_cache_model_sweep.dir/test_cache_model_sweep.cc.o.d"
  "test_cache_model_sweep"
  "test_cache_model_sweep.pdb"
  "test_cache_model_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_model_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
