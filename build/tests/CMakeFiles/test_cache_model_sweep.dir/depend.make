# Empty dependencies file for test_cache_model_sweep.
# This may be replaced when dependencies are built.
