file(REMOVE_RECURSE
  "CMakeFiles/test_pcie_link.dir/test_pcie_link.cc.o"
  "CMakeFiles/test_pcie_link.dir/test_pcie_link.cc.o.d"
  "test_pcie_link"
  "test_pcie_link.pdb"
  "test_pcie_link[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcie_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
