# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_types_units[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_table_csv[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_resource[1]_include.cmake")
include("/root/repo/build/tests/test_page_table[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_mem_models[1]_include.cmake")
include("/root/repo/build/tests/test_pcie_link[1]_include.cmake")
include("/root/repo/build/tests/test_fault_prefetch[1]_include.cmake")
include("/root/repo/build/tests/test_migration_engine[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_models[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_executor[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_modes_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_profile[1]_include.cmake")
include("/root/repo/build/tests/test_executor_edge[1]_include.cmake")
include("/root/repo/build/tests/test_logging[1]_include.cmake")
include("/root/repo/build/tests/test_cache_model_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_timeline[1]_include.cmake")
