# Empty dependencies file for uvmasync_workloads.
# This may be replaced when dependencies are built.
