
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apps/rodinia/backprop.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/backprop.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/backprop.cc.o.d"
  "/root/repo/src/workloads/apps/rodinia/hotspot.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/hotspot.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/hotspot.cc.o.d"
  "/root/repo/src/workloads/apps/rodinia/kmeans.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/kmeans.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/kmeans.cc.o.d"
  "/root/repo/src/workloads/apps/rodinia/lavamd.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/lavamd.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/lavamd.cc.o.d"
  "/root/repo/src/workloads/apps/rodinia/lud.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/lud.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/lud.cc.o.d"
  "/root/repo/src/workloads/apps/rodinia/nw.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/nw.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/nw.cc.o.d"
  "/root/repo/src/workloads/apps/rodinia/pathfinder.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/pathfinder.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/pathfinder.cc.o.d"
  "/root/repo/src/workloads/apps/rodinia/srad.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/srad.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia/srad.cc.o.d"
  "/root/repo/src/workloads/apps/rodinia_workloads.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/rodinia_workloads.cc.o.d"
  "/root/repo/src/workloads/apps/uvmbench_workloads.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/uvmbench_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/apps/uvmbench_workloads.cc.o.d"
  "/root/repo/src/workloads/job_loader.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/job_loader.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/job_loader.cc.o.d"
  "/root/repo/src/workloads/micro/micro_workloads.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/micro/micro_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/micro/micro_workloads.cc.o.d"
  "/root/repo/src/workloads/nn/darknet_workloads.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/nn/darknet_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/nn/darknet_workloads.cc.o.d"
  "/root/repo/src/workloads/nn/layer.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/nn/layer.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/nn/layer.cc.o.d"
  "/root/repo/src/workloads/nn/network.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/nn/network.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/nn/network.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/size_class.cc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/size_class.cc.o" "gcc" "src/workloads/CMakeFiles/uvmasync_workloads.dir/size_class.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uvmasync_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uvmasync_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uvmasync_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/xfer/CMakeFiles/uvmasync_xfer.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/uvmasync_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/uvmasync_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
