file(REMOVE_RECURSE
  "libuvmasync_workloads.a"
)
