# Empty dependencies file for uvmasync_sim.
# This may be replaced when dependencies are built.
