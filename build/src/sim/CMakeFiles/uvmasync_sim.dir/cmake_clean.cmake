file(REMOVE_RECURSE
  "CMakeFiles/uvmasync_sim.dir/event_queue.cc.o"
  "CMakeFiles/uvmasync_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/uvmasync_sim.dir/resource.cc.o"
  "CMakeFiles/uvmasync_sim.dir/resource.cc.o.d"
  "libuvmasync_sim.a"
  "libuvmasync_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmasync_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
