file(REMOVE_RECURSE
  "libuvmasync_sim.a"
)
