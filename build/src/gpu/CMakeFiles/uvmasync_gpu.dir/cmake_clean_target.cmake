file(REMOVE_RECURSE
  "libuvmasync_gpu.a"
)
