
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/cache_model.cc" "src/gpu/CMakeFiles/uvmasync_gpu.dir/cache_model.cc.o" "gcc" "src/gpu/CMakeFiles/uvmasync_gpu.dir/cache_model.cc.o.d"
  "/root/repo/src/gpu/instruction_mix.cc" "src/gpu/CMakeFiles/uvmasync_gpu.dir/instruction_mix.cc.o" "gcc" "src/gpu/CMakeFiles/uvmasync_gpu.dir/instruction_mix.cc.o.d"
  "/root/repo/src/gpu/kernel_descriptor.cc" "src/gpu/CMakeFiles/uvmasync_gpu.dir/kernel_descriptor.cc.o" "gcc" "src/gpu/CMakeFiles/uvmasync_gpu.dir/kernel_descriptor.cc.o.d"
  "/root/repo/src/gpu/kernel_executor.cc" "src/gpu/CMakeFiles/uvmasync_gpu.dir/kernel_executor.cc.o" "gcc" "src/gpu/CMakeFiles/uvmasync_gpu.dir/kernel_executor.cc.o.d"
  "/root/repo/src/gpu/occupancy.cc" "src/gpu/CMakeFiles/uvmasync_gpu.dir/occupancy.cc.o" "gcc" "src/gpu/CMakeFiles/uvmasync_gpu.dir/occupancy.cc.o.d"
  "/root/repo/src/gpu/transfer_mode.cc" "src/gpu/CMakeFiles/uvmasync_gpu.dir/transfer_mode.cc.o" "gcc" "src/gpu/CMakeFiles/uvmasync_gpu.dir/transfer_mode.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uvmasync_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uvmasync_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uvmasync_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/xfer/CMakeFiles/uvmasync_xfer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
