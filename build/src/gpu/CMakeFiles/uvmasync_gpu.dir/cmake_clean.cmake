file(REMOVE_RECURSE
  "CMakeFiles/uvmasync_gpu.dir/cache_model.cc.o"
  "CMakeFiles/uvmasync_gpu.dir/cache_model.cc.o.d"
  "CMakeFiles/uvmasync_gpu.dir/instruction_mix.cc.o"
  "CMakeFiles/uvmasync_gpu.dir/instruction_mix.cc.o.d"
  "CMakeFiles/uvmasync_gpu.dir/kernel_descriptor.cc.o"
  "CMakeFiles/uvmasync_gpu.dir/kernel_descriptor.cc.o.d"
  "CMakeFiles/uvmasync_gpu.dir/kernel_executor.cc.o"
  "CMakeFiles/uvmasync_gpu.dir/kernel_executor.cc.o.d"
  "CMakeFiles/uvmasync_gpu.dir/occupancy.cc.o"
  "CMakeFiles/uvmasync_gpu.dir/occupancy.cc.o.d"
  "CMakeFiles/uvmasync_gpu.dir/transfer_mode.cc.o"
  "CMakeFiles/uvmasync_gpu.dir/transfer_mode.cc.o.d"
  "libuvmasync_gpu.a"
  "libuvmasync_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmasync_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
