# Empty dependencies file for uvmasync_gpu.
# This may be replaced when dependencies are built.
