file(REMOVE_RECURSE
  "libuvmasync_common.a"
)
