# Empty dependencies file for uvmasync_common.
# This may be replaced when dependencies are built.
