file(REMOVE_RECURSE
  "CMakeFiles/uvmasync_common.dir/csv.cc.o"
  "CMakeFiles/uvmasync_common.dir/csv.cc.o.d"
  "CMakeFiles/uvmasync_common.dir/kv_config.cc.o"
  "CMakeFiles/uvmasync_common.dir/kv_config.cc.o.d"
  "CMakeFiles/uvmasync_common.dir/logging.cc.o"
  "CMakeFiles/uvmasync_common.dir/logging.cc.o.d"
  "CMakeFiles/uvmasync_common.dir/rng.cc.o"
  "CMakeFiles/uvmasync_common.dir/rng.cc.o.d"
  "CMakeFiles/uvmasync_common.dir/stats.cc.o"
  "CMakeFiles/uvmasync_common.dir/stats.cc.o.d"
  "CMakeFiles/uvmasync_common.dir/table.cc.o"
  "CMakeFiles/uvmasync_common.dir/table.cc.o.d"
  "libuvmasync_common.a"
  "libuvmasync_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmasync_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
