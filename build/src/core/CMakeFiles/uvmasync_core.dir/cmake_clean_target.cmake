file(REMOVE_RECURSE
  "libuvmasync_core.a"
)
