# Empty compiler generated dependencies file for uvmasync_core.
# This may be replaced when dependencies are built.
