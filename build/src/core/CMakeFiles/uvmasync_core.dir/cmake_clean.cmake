file(REMOVE_RECURSE
  "CMakeFiles/uvmasync_core.dir/batch_pipeline.cc.o"
  "CMakeFiles/uvmasync_core.dir/batch_pipeline.cc.o.d"
  "CMakeFiles/uvmasync_core.dir/experiment.cc.o"
  "CMakeFiles/uvmasync_core.dir/experiment.cc.o.d"
  "CMakeFiles/uvmasync_core.dir/report.cc.o"
  "CMakeFiles/uvmasync_core.dir/report.cc.o.d"
  "CMakeFiles/uvmasync_core.dir/sweep.cc.o"
  "CMakeFiles/uvmasync_core.dir/sweep.cc.o.d"
  "libuvmasync_core.a"
  "libuvmasync_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmasync_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
