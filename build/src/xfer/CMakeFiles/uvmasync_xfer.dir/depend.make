# Empty dependencies file for uvmasync_xfer.
# This may be replaced when dependencies are built.
