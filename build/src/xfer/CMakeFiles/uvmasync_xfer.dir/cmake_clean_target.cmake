file(REMOVE_RECURSE
  "libuvmasync_xfer.a"
)
