file(REMOVE_RECURSE
  "CMakeFiles/uvmasync_xfer.dir/fault_handler.cc.o"
  "CMakeFiles/uvmasync_xfer.dir/fault_handler.cc.o.d"
  "CMakeFiles/uvmasync_xfer.dir/migration_engine.cc.o"
  "CMakeFiles/uvmasync_xfer.dir/migration_engine.cc.o.d"
  "CMakeFiles/uvmasync_xfer.dir/pcie_link.cc.o"
  "CMakeFiles/uvmasync_xfer.dir/pcie_link.cc.o.d"
  "CMakeFiles/uvmasync_xfer.dir/prefetcher.cc.o"
  "CMakeFiles/uvmasync_xfer.dir/prefetcher.cc.o.d"
  "libuvmasync_xfer.a"
  "libuvmasync_xfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmasync_xfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
