
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xfer/fault_handler.cc" "src/xfer/CMakeFiles/uvmasync_xfer.dir/fault_handler.cc.o" "gcc" "src/xfer/CMakeFiles/uvmasync_xfer.dir/fault_handler.cc.o.d"
  "/root/repo/src/xfer/migration_engine.cc" "src/xfer/CMakeFiles/uvmasync_xfer.dir/migration_engine.cc.o" "gcc" "src/xfer/CMakeFiles/uvmasync_xfer.dir/migration_engine.cc.o.d"
  "/root/repo/src/xfer/pcie_link.cc" "src/xfer/CMakeFiles/uvmasync_xfer.dir/pcie_link.cc.o" "gcc" "src/xfer/CMakeFiles/uvmasync_xfer.dir/pcie_link.cc.o.d"
  "/root/repo/src/xfer/prefetcher.cc" "src/xfer/CMakeFiles/uvmasync_xfer.dir/prefetcher.cc.o" "gcc" "src/xfer/CMakeFiles/uvmasync_xfer.dir/prefetcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uvmasync_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uvmasync_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uvmasync_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
