file(REMOVE_RECURSE
  "CMakeFiles/uvmasync_mem.dir/access_pattern.cc.o"
  "CMakeFiles/uvmasync_mem.dir/access_pattern.cc.o.d"
  "CMakeFiles/uvmasync_mem.dir/cache.cc.o"
  "CMakeFiles/uvmasync_mem.dir/cache.cc.o.d"
  "CMakeFiles/uvmasync_mem.dir/device_memory.cc.o"
  "CMakeFiles/uvmasync_mem.dir/device_memory.cc.o.d"
  "CMakeFiles/uvmasync_mem.dir/host_memory.cc.o"
  "CMakeFiles/uvmasync_mem.dir/host_memory.cc.o.d"
  "CMakeFiles/uvmasync_mem.dir/page_table.cc.o"
  "CMakeFiles/uvmasync_mem.dir/page_table.cc.o.d"
  "CMakeFiles/uvmasync_mem.dir/tlb.cc.o"
  "CMakeFiles/uvmasync_mem.dir/tlb.cc.o.d"
  "libuvmasync_mem.a"
  "libuvmasync_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmasync_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
