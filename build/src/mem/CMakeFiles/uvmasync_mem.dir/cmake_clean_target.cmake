file(REMOVE_RECURSE
  "libuvmasync_mem.a"
)
