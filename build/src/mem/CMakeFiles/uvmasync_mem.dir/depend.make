# Empty dependencies file for uvmasync_mem.
# This may be replaced when dependencies are built.
