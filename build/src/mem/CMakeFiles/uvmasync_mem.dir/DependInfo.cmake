
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/access_pattern.cc" "src/mem/CMakeFiles/uvmasync_mem.dir/access_pattern.cc.o" "gcc" "src/mem/CMakeFiles/uvmasync_mem.dir/access_pattern.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/uvmasync_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/uvmasync_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/device_memory.cc" "src/mem/CMakeFiles/uvmasync_mem.dir/device_memory.cc.o" "gcc" "src/mem/CMakeFiles/uvmasync_mem.dir/device_memory.cc.o.d"
  "/root/repo/src/mem/host_memory.cc" "src/mem/CMakeFiles/uvmasync_mem.dir/host_memory.cc.o" "gcc" "src/mem/CMakeFiles/uvmasync_mem.dir/host_memory.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/mem/CMakeFiles/uvmasync_mem.dir/page_table.cc.o" "gcc" "src/mem/CMakeFiles/uvmasync_mem.dir/page_table.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/mem/CMakeFiles/uvmasync_mem.dir/tlb.cc.o" "gcc" "src/mem/CMakeFiles/uvmasync_mem.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uvmasync_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uvmasync_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
