file(REMOVE_RECURSE
  "libuvmasync_runtime.a"
)
