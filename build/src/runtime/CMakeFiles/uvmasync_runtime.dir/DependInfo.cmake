
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/allocator.cc" "src/runtime/CMakeFiles/uvmasync_runtime.dir/allocator.cc.o" "gcc" "src/runtime/CMakeFiles/uvmasync_runtime.dir/allocator.cc.o.d"
  "/root/repo/src/runtime/config_loader.cc" "src/runtime/CMakeFiles/uvmasync_runtime.dir/config_loader.cc.o" "gcc" "src/runtime/CMakeFiles/uvmasync_runtime.dir/config_loader.cc.o.d"
  "/root/repo/src/runtime/device.cc" "src/runtime/CMakeFiles/uvmasync_runtime.dir/device.cc.o" "gcc" "src/runtime/CMakeFiles/uvmasync_runtime.dir/device.cc.o.d"
  "/root/repo/src/runtime/job.cc" "src/runtime/CMakeFiles/uvmasync_runtime.dir/job.cc.o" "gcc" "src/runtime/CMakeFiles/uvmasync_runtime.dir/job.cc.o.d"
  "/root/repo/src/runtime/noise_model.cc" "src/runtime/CMakeFiles/uvmasync_runtime.dir/noise_model.cc.o" "gcc" "src/runtime/CMakeFiles/uvmasync_runtime.dir/noise_model.cc.o.d"
  "/root/repo/src/runtime/time_breakdown.cc" "src/runtime/CMakeFiles/uvmasync_runtime.dir/time_breakdown.cc.o" "gcc" "src/runtime/CMakeFiles/uvmasync_runtime.dir/time_breakdown.cc.o.d"
  "/root/repo/src/runtime/timeline.cc" "src/runtime/CMakeFiles/uvmasync_runtime.dir/timeline.cc.o" "gcc" "src/runtime/CMakeFiles/uvmasync_runtime.dir/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uvmasync_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uvmasync_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uvmasync_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/xfer/CMakeFiles/uvmasync_xfer.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/uvmasync_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
