file(REMOVE_RECURSE
  "CMakeFiles/uvmasync_runtime.dir/allocator.cc.o"
  "CMakeFiles/uvmasync_runtime.dir/allocator.cc.o.d"
  "CMakeFiles/uvmasync_runtime.dir/config_loader.cc.o"
  "CMakeFiles/uvmasync_runtime.dir/config_loader.cc.o.d"
  "CMakeFiles/uvmasync_runtime.dir/device.cc.o"
  "CMakeFiles/uvmasync_runtime.dir/device.cc.o.d"
  "CMakeFiles/uvmasync_runtime.dir/job.cc.o"
  "CMakeFiles/uvmasync_runtime.dir/job.cc.o.d"
  "CMakeFiles/uvmasync_runtime.dir/noise_model.cc.o"
  "CMakeFiles/uvmasync_runtime.dir/noise_model.cc.o.d"
  "CMakeFiles/uvmasync_runtime.dir/time_breakdown.cc.o"
  "CMakeFiles/uvmasync_runtime.dir/time_breakdown.cc.o.d"
  "CMakeFiles/uvmasync_runtime.dir/timeline.cc.o"
  "CMakeFiles/uvmasync_runtime.dir/timeline.cc.o.d"
  "libuvmasync_runtime.a"
  "libuvmasync_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmasync_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
