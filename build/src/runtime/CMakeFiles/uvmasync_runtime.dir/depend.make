# Empty dependencies file for uvmasync_runtime.
# This may be replaced when dependencies are built.
