# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "vector_seq" "small")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_irregular "/root/repo/build/examples/irregular_study" "small")
set_tests_properties(example_irregular PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nn "/root/repo/build/examples/nn_inference" "resnet18" "4")
set_tests_properties(example_nn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_batch "/root/repo/build/examples/batch_jobs" "small" "1")
set_tests_properties(example_batch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom "/root/repo/build/examples/custom_workload")
set_tests_properties(example_custom PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_oversub "/root/repo/build/examples/oversubscription" "44")
set_tests_properties(example_oversub PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
