# Empty dependencies file for nn_inference.
# This may be replaced when dependencies are built.
