file(REMOVE_RECURSE
  "CMakeFiles/irregular_study.dir/irregular_study.cpp.o"
  "CMakeFiles/irregular_study.dir/irregular_study.cpp.o.d"
  "irregular_study"
  "irregular_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
