# Empty dependencies file for irregular_study.
# This may be replaced when dependencies are built.
