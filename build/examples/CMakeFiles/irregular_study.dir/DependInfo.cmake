
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/irregular_study.cpp" "examples/CMakeFiles/irregular_study.dir/irregular_study.cpp.o" "gcc" "examples/CMakeFiles/irregular_study.dir/irregular_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/uvmasync_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/uvmasync_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/uvmasync_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/uvmasync_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/xfer/CMakeFiles/uvmasync_xfer.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uvmasync_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uvmasync_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uvmasync_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
