# Empty compiler generated dependencies file for batch_jobs.
# This may be replaced when dependencies are built.
