file(REMOVE_RECURSE
  "CMakeFiles/batch_jobs.dir/batch_jobs.cpp.o"
  "CMakeFiles/batch_jobs.dir/batch_jobs.cpp.o.d"
  "batch_jobs"
  "batch_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
