file(REMOVE_RECURSE
  "CMakeFiles/uvmasync_cli.dir/uvmasync_cli.cc.o"
  "CMakeFiles/uvmasync_cli.dir/uvmasync_cli.cc.o.d"
  "uvmasync"
  "uvmasync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmasync_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
