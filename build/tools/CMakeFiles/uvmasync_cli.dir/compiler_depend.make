# Empty compiler generated dependencies file for uvmasync_cli.
# This may be replaced when dependencies are built.
