#!/usr/bin/env bash
# Source-level determinism lint.
#
# The simulator promises bit-identical results for a given seed at any
# --jobs count; that promise dies the day somebody reaches for a
# wall-clock or an unseeded RNG inside the model, or iterates an
# unordered container straight into a report. This gate bans those
# constructions in simulation code:
#
#   - rand()/srand()/std::random_device: unseeded randomness (the
#     deterministic Rng in common/rng.hh is the only legal source)
#   - system_clock/high_resolution_clock: wall-clock time in any sim
#     path; steady_clock is allowed ONLY in the allowlisted host-side
#     measurement code (parallel_runner.cc wall-time metrics)
#   - range-for over unordered_map/unordered_set in files that write
#     CSV or report output (iteration order leaks into artifacts)
#   - default- or literal-seeded Rng construction in src/inject: every
#     injector stream must be derived from the plan salt, or injected
#     runs stop replaying identically across --jobs counts
#   - raw file I/O (stdio, POSIX file calls, fstreams) in src/journal,
#     src/store or src/serve: durable state goes through the IoEnv
#     seam in src/io, or the fault enumerator and fsck cannot see it
#
# The checks are token-aware: comments and string literals are blanked
# (line numbers preserved) before any pattern runs, so prose saying
# "never call rand() here" or a log string naming system_clock cannot
# trip the gate. `--self-test` runs the rules against the fixtures in
# tests/fixtures/determinism/ (one file every rule must flag, one
# where every banned token hides in comments/strings and the lint
# must stay silent).
#
# Exit 0 when clean, 1 with findings. Run from anywhere.

set -u
cd "$(dirname "$0")/.."

fail=0
note() { printf '%s\n' "$*"; }

# --- the rule patterns ----------------------------------------------
# \b keeps e.g. "srand48_r" or identifiers like "operand(" matching.
RE_RAND='\b(rand|srand)[[:space:]]*\(|std::random_device'
RE_WALLCLOCK='system_clock|high_resolution_clock'
RE_STEADY='steady_clock'
RE_INJECT_RNG='Rng[[:space:]]*\([[:space:]]*\)|Rng\{[[:space:]]*\}|Rng[[:space:]]*\([[:space:]]*[0-9]'
RE_JOURNAL_CLOCK='std::chrono|clock_gettime|gettimeofday|\bstrftime[[:space:]]*\(|\blocaltime(_r)?[[:space:]]*\(|\bgmtime(_r)?[[:space:]]*\(|std::time[[:space:]]*\(|[^a-zA-Z_]time[[:space:]]*\([[:space:]]*(NULL|nullptr|0|&)'
RE_UNORDERED_ITER='for[[:space:]]*\(.*:[[:space:]]*[^)]*unordered_(map|set)'
RE_OUTPUT_TOKENS='CsvWriter|writeRow|TextTable|writeChromeTrace|writeTraceMetricsCsv'
# Raw file I/O in the durable-state directories. Four families:
# stdio/POSIX file calls by name; explicitly scoped ::open-style
# syscalls (the unscoped names are too common to ban — ResultStore
# has its own open(), AdmissionQueue its own remove()); fstream
# types; and the <cstdio> std::remove/std::rename file APIs. The
# std::remove file form is distinguished from the <algorithm>
# iterator form by its single const-char* argument: a .c_str() call
# or a lone (blanked) string literal, never an iterator pair.
RE_RAW_IO='\b(fopen|freopen|fdopen|fwrite|fread|fgets|fputs|fscanf|fclose|fflush|fseeko?|ftello?|fsync|fdatasync|creat|mkdir|rmdir|unlink|opendir|readdir|closedir|truncate|ftruncate)[[:space:]]*\(|(^|[^A-Za-z0-9_])::(open|creat|stat|lstat|rename|remove|unlink|mkdir|opendir|truncate|ftruncate|fsync|fdatasync)[[:space:]]*\(|\b(fstream|ofstream|ifstream)\b|std::rename[[:space:]]*\(|std::remove[[:space:]]*\([^,;)]*c_str|std::remove[[:space:]]*\([[:space:]]*\)'

# Blank comments and string/char literals while preserving the line
# structure, so grep line numbers still point at the real source.
# Block comments span lines; string state resets per line (a C++
# string literal cannot).
strip_src() {
    awk '
    {
        line = $0; out = ""; i = 1; n = length(line); instr = 0; q = ""
        while (i <= n) {
            c = substr(line, i, 1)
            d = (i < n) ? substr(line, i + 1, 1) : ""
            if (inblock) {
                if (c == "*" && d == "/") { inblock = 0; i += 2 }
                else i++
                out = out " "
                continue
            }
            if (instr) {
                if (c == "\\") { i += 2; out = out " " }
                else if (c == q) { instr = 0; i++; out = out " " }
                else { i++; out = out " " }
                continue
            }
            if (c == "/" && d == "/") break
            if (c == "/" && d == "*") {
                inblock = 1; i += 2; out = out "  "; continue
            }
            if (c == "\"" || c == "\x27") {
                instr = 1; q = c; i++; out = out " "; continue
            }
            out = out c; i++
        }
        print out
    }' "$1"
}

# scan PATTERN FILE... -> "file:line:stripped-line" per match.
scan() {
    local pattern=$1 f
    shift
    for f in "$@"; do
        strip_src "$f" | grep -nE "$pattern" | sed "s|^|$f:|"
    done
    true
}

# --- self-test ------------------------------------------------------
if [ "${1:-}" = "--self-test" ]; then
    bad=tests/fixtures/determinism/lint_bad.cc
    clean=tests/fixtures/determinism/lint_clean.cc
    st_fail=0
    must_hit() {
        if [ -z "$(scan "$2" "$3")" ]; then
            note "determinism lint self-test FAIL: rule '$1' did not flag $3"
            st_fail=1
        fi
    }
    must_miss() {
        local hits
        hits=$(scan "$2" "$3")
        if [ -n "$hits" ]; then
            note "determinism lint self-test FAIL: rule '$1' false-positived on $3:"
            note "$hits"
            st_fail=1
        fi
    }
    must_hit "unseeded randomness" "$RE_RAND" "$bad"
    must_hit "wall-clock" "$RE_WALLCLOCK" "$bad"
    must_hit "steady_clock" "$RE_STEADY" "$bad"
    must_hit "inject rng" "$RE_INJECT_RNG" "$bad"
    must_hit "journal clock" "$RE_JOURNAL_CLOCK" "$bad"
    must_hit "unordered iteration" "$RE_UNORDERED_ITER" "$bad"
    must_hit "raw file I/O" "$RE_RAW_IO" "$bad"
    must_miss "unseeded randomness" "$RE_RAND" "$clean"
    must_miss "wall-clock" "$RE_WALLCLOCK" "$clean"
    must_miss "steady_clock" "$RE_STEADY" "$clean"
    must_miss "inject rng" "$RE_INJECT_RNG" "$clean"
    must_miss "journal clock" "$RE_JOURNAL_CLOCK" "$clean"
    must_miss "unordered iteration" "$RE_UNORDERED_ITER" "$clean"
    must_miss "raw file I/O" "$RE_RAW_IO" "$clean"
    if [ "$st_fail" -eq 0 ]; then
        note "determinism lint self-test: ok"
    fi
    exit "$st_fail"
fi

# Simulation sources: everything under src/ and tools/. Sorted so
# findings print in a stable order.
SIM_FILES=$(find src tools \( -name '*.cc' -o -name '*.hh' \) | sort)

# --- unseeded randomness --------------------------------------------
hits=$(scan "$RE_RAND" $SIM_FILES)
if [ -n "$hits" ]; then
    note "determinism lint: unseeded randomness (use common/rng.hh):"
    note "$hits"
    fail=1
fi

# --- wall-clock time ------------------------------------------------
hits=$(scan "$RE_WALLCLOCK" $SIM_FILES)
if [ -n "$hits" ]; then
    note "determinism lint: wall-clock source in simulation code:"
    note "$hits"
    fail=1
fi

# steady_clock is a monotonic duration source, acceptable only for
# host-side performance metrics that never feed simulation results.
# src/perf (and its driver tools/uvmasync_bench.cc) is the perf
# harness: pure host-side self-timing that never feeds simulation
# state, exactly like the parallel runner's wall-time metrics.
ALLOW_STEADY='src/core/parallel_runner.cc src/perf/harness.cc src/perf/harness.hh tools/uvmasync_bench.cc'
hits=$(scan "$RE_STEADY" $SIM_FILES)
for allowed in $ALLOW_STEADY; do
    hits=$(printf '%s\n' "$hits" | grep -v -F "$allowed" || true)
done
if [ -n "$hits" ]; then
    note "determinism lint: steady_clock outside the allowlist" \
         "($ALLOW_STEADY):"
    note "$hits"
    fail=1
fi

# --- fault injection: salt-derived RNG streams only -----------------
# The injection layer's whole replay guarantee rests on every stream
# being a pure function of the plan salt (Injector::streamRng). A
# default-constructed or literal-seeded Rng in src/inject would pass
# every functional test and still break --jobs replay identity.
INJECT_FILES=$(find src/inject \( -name '*.cc' -o -name '*.hh' \) | sort)
hits=$(scan "$RE_INJECT_RNG" $INJECT_FILES)
if [ -n "$hits" ]; then
    note "determinism lint: src/inject RNG stream not derived from" \
         "the plan salt (use Injector::streamRng):"
    note "$hits"
    fail=1
fi

# --- journal: no wall-clock reads -----------------------------------
# The run journal is a byte-deterministic artifact (same grid + seed
# => same bytes at any --jobs count, across interrupt/resume). A
# timestamp — any wall-clock read — in src/journal would silently
# break the cmp-based resume gates in check.sh and the golden tests.
JOURNAL_FILES=$(find src/journal \( -name '*.cc' -o -name '*.hh' \) | sort)
hits=$(scan "$RE_JOURNAL_CLOCK" $JOURNAL_FILES)
if [ -n "$hits" ]; then
    note "determinism lint: wall-clock read in src/journal (the" \
         "journal must stay byte-deterministic):"
    note "$hits"
    fail=1
fi

# --- result store: no wall-clock reads ------------------------------
# The result store's eviction order runs on a logical LRU clock
# persisted in meta.json, and its segments must be byte-identical
# across cold/warm runs and --jobs counts. Any wall-clock read in
# src/store would leak time into the artifact and break the
# cold-vs-warm cmp gates, so the journal's clock ban applies here too.
STORE_FILES=$(find src/store \( -name '*.cc' -o -name '*.hh' \) | sort)
hits=$(scan "$RE_JOURNAL_CLOCK" $STORE_FILES)
if [ -n "$hits" ]; then
    note "determinism lint: wall-clock read in src/store (eviction" \
         "must use the logical LRU clock, never real time):"
    note "$hits"
    fail=1
fi

# --- campaign daemon: no wall-clock reads ---------------------------
# The daemon's result streams are journal record lines and must stay
# byte-identical to the batch CLI's journal for the same batch —
# across restarts, job counts and client interleavings. A wall-clock
# read anywhere in src/serve (timeouts, timestamps, backoff) would
# leak time into scheduling or the stream and break the cmp-based
# serve gates; the daemon blocks on poll()/condition variables with
# no deadline instead.
SERVE_FILES=$(find src/serve \( -name '*.cc' -o -name '*.hh' \) | sort)
hits=$(scan "$RE_JOURNAL_CLOCK" $SERVE_FILES)
if [ -n "$hits" ]; then
    note "determinism lint: wall-clock read in src/serve (the" \
         "daemon's streams must stay byte-deterministic; block on" \
         "poll/condition variables, never on deadlines):"
    note "$hits"
    fail=1
fi

# --- durable state: every file op through the IoEnv seam ------------
# src/journal, src/store and src/serve route all durable-state I/O
# through common IoEnv (src/io). That seam is what lets the crash
# enumerator in tests/test_io_fault.cc fail every single operation,
# and what keeps `uvmasync fsck` an exhaustive model of the on-disk
# format: raw stdio/POSIX file calls or fstreams here would open a
# side channel the fault layer cannot inject into. Socket-fd traffic
# (::read/::write/::close on connections in server.cc/wire.cc) is
# not file I/O and stays legal. The one raw *file* call allowed is
# server.cc's ::unlink of the unix-socket endpoint — a kernel
# rendezvous point, not durable state, gone with the process anyway.
ALLOW_RAW_IO='^src/serve/server\.cc:[0-9]+:.*::unlink'
DURABLE_FILES="$JOURNAL_FILES $STORE_FILES $SERVE_FILES"
hits=$(scan "$RE_RAW_IO" $DURABLE_FILES)
hits=$(printf '%s\n' "$hits" | grep -vE "$ALLOW_RAW_IO" || true)
if [ -n "$hits" ]; then
    note "determinism lint: raw file I/O bypasses the IoEnv seam" \
         "(route it through src/io so faults inject and fsck sees it):"
    note "$hits"
    fail=1
fi

# --- unordered iteration feeding output -----------------------------
# Files that produce user-visible artifacts must not range-for over
# unordered containers; the iteration order is ABI/hash-seed soup.
# Output-producing files are detected on stripped sources too, so a
# doc comment mentioning CsvWriter does not pull a file into scope.
for f in $SIM_FILES; do
    case "$f" in
      *.cc) ;;
      *) continue ;;
    esac
    if ! strip_src "$f" | grep -qE "$RE_OUTPUT_TOKENS"; then
        continue
    fi
    hits=$(scan "$RE_UNORDERED_ITER" "$f")
    if [ -n "$hits" ]; then
        note "determinism lint: $f iterates an unordered container" \
             "while producing report/CSV output:"
        note "$hits"
        fail=1
    fi
done

if [ "$fail" -eq 0 ]; then
    note "determinism lint: clean"
fi
exit "$fail"
