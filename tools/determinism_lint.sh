#!/usr/bin/env bash
# Source-level determinism lint.
#
# The simulator promises bit-identical results for a given seed at any
# --jobs count; that promise dies the day somebody reaches for a
# wall-clock or an unseeded RNG inside the model, or iterates an
# unordered container straight into a report. This grep-level gate
# bans those constructions in simulation code:
#
#   - rand()/srand()/std::random_device: unseeded randomness (the
#     deterministic Rng in common/rng.hh is the only legal source)
#   - system_clock/high_resolution_clock: wall-clock time in any sim
#     path; steady_clock is allowed ONLY in the allowlisted host-side
#     measurement code (parallel_runner.cc wall-time metrics)
#   - range-for over unordered_map/unordered_set in files that write
#     CSV or report output (iteration order leaks into artifacts)
#   - default- or literal-seeded Rng construction in src/inject: every
#     injector stream must be derived from the plan salt, or injected
#     runs stop replaying identically across --jobs counts
#
# Exit 0 when clean, 1 with findings. Run from anywhere.

set -u
cd "$(dirname "$0")/.."

fail=0
note() { printf '%s\n' "$*"; }

# Simulation sources: everything under src/ and tools/.
SIM_PATHS=(src tools)

# --- unseeded randomness --------------------------------------------
# \b keeps e.g. "srand48_r" or identifiers like "strand" from matching.
hits=$(grep -rnE '\b(rand|srand)\s*\(|std::random_device' \
    "${SIM_PATHS[@]}" --include='*.cc' --include='*.hh' \
    | grep -v 'determinism' || true)
if [ -n "$hits" ]; then
    note "determinism lint: unseeded randomness (use common/rng.hh):"
    note "$hits"
    fail=1
fi

# --- wall-clock time ------------------------------------------------
hits=$(grep -rnE 'system_clock|high_resolution_clock' \
    "${SIM_PATHS[@]}" --include='*.cc' --include='*.hh' || true)
if [ -n "$hits" ]; then
    note "determinism lint: wall-clock source in simulation code:"
    note "$hits"
    fail=1
fi

# steady_clock is a monotonic duration source, acceptable only for
# host-side performance metrics that never feed simulation results.
# src/perf (and its driver tools/uvmasync_bench.cc) is the perf
# harness: pure host-side self-timing that never feeds simulation
# state, exactly like the parallel runner's wall-time metrics.
ALLOW_STEADY='src/core/parallel_runner.cc src/perf/harness.cc src/perf/harness.hh tools/uvmasync_bench.cc'
hits=$(grep -rnE 'steady_clock' \
    "${SIM_PATHS[@]}" --include='*.cc' --include='*.hh')
for allowed in $ALLOW_STEADY; do
    hits=$(printf '%s\n' "$hits" | grep -v -F "$allowed" || true)
done
if [ -n "$hits" ]; then
    note "determinism lint: steady_clock outside the allowlist" \
         "($ALLOW_STEADY):"
    note "$hits"
    fail=1
fi

# --- fault injection: salt-derived RNG streams only -----------------
# The injection layer's whole replay guarantee rests on every stream
# being a pure function of the plan salt (Injector::streamRng). A
# default-constructed or literal-seeded Rng in src/inject would pass
# every functional test and still break --jobs replay identity.
hits=$(grep -rnE 'Rng\s*\(\s*\)|Rng\{\s*\}|Rng\s*\(\s*[0-9]' \
    src/inject --include='*.cc' --include='*.hh' || true)
if [ -n "$hits" ]; then
    note "determinism lint: src/inject RNG stream not derived from" \
         "the plan salt (use Injector::streamRng):"
    note "$hits"
    fail=1
fi

# --- journal: no wall-clock reads -----------------------------------
# The run journal is a byte-deterministic artifact (same grid + seed
# => same bytes at any --jobs count, across interrupt/resume). A
# timestamp — any wall-clock read — in src/journal would silently
# break the cmp-based resume gates in check.sh and the golden tests.
hits=$(grep -rnE \
    'std::chrono|clock_gettime|gettimeofday|\bstrftime\s*\(|\blocaltime(_r)?\s*\(|\bgmtime(_r)?\s*\(|std::time\s*\(|[^a-zA-Z_]time\s*\(\s*(NULL|nullptr|0|&)' \
    src/journal --include='*.cc' --include='*.hh' || true)
if [ -n "$hits" ]; then
    note "determinism lint: wall-clock read in src/journal (the" \
         "journal must stay byte-deterministic):"
    note "$hits"
    fail=1
fi

# --- unordered iteration feeding output -----------------------------
# Files that produce user-visible artifacts must not range-for over
# unordered containers; the iteration order is ABI/hash-seed soup.
OUTPUT_FILES=$(grep -rlE \
    'CsvWriter|writeRow|TextTable|writeChromeTrace|writeTraceMetricsCsv' \
    src tools --include='*.cc' || true)
for f in $OUTPUT_FILES; do
    hits=$(grep -nE \
        'for\s*\(.*:\s*[^)]*unordered_(map|set)' "$f" || true)
    if [ -n "$hits" ]; then
        note "determinism lint: $f iterates an unordered container" \
             "while producing report/CSV output:"
        note "$hits"
        fail=1
    fi
done

if [ "$fail" -eq 0 ]; then
    note "determinism lint: clean"
fi
exit "$fail"
