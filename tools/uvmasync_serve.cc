/**
 * @file
 * The campaign daemon executable: simulation as a service over a
 * local socket.
 *
 *   uvmasync-serve --socket PATH --state DIR [--jobs N]
 *                  [--config FILE] [--store DIR | --no-store]
 *                  [--store-max-bytes N] [--paused]
 *
 * Clients (`uvmasync client ...` or anything speaking the
 * length-prefixed frame protocol of src/serve/wire.hh) submit
 * experiment batches, poll status, stream submission-order hexfloat
 * JSONL results, and cancel. State lives under --state: every batch
 * keeps its payload and its fsync'd run journal there, so killing
 * the daemon at any point and restarting it over the same state
 * directory resumes every in-flight campaign — and the result
 * stream a client eventually collects is byte-identical to an
 * uninterrupted run (and to `uvmasync run --journal` of the same
 * batch).
 *
 * --store attaches the shared cross-client result store (default:
 * the UVMASYNC_STORE environment variable, same as the batch CLI),
 * so one tenant's finished points are every other tenant's cache
 * hits. Both the state directory and the socket path are preflighted
 * before the first client is accepted: a misconfigured daemon dies
 * at startup with an actionable message, never on the first submit.
 *
 * SIGINT/SIGTERM stop the daemon cleanly: the in-flight batch drains
 * (its journal stays a durable prefix either way), queued batches
 * stay pending on disk for the next start.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "runtime/config_loader.hh"
#include "serve/daemon.hh"
#include "serve/server.hh"

using namespace uvmasync;

namespace
{

/** Minimal --key value argument parser (same shape as the CLI's). */
class Args
{
  public:
    Args(int argc, char **argv, int start)
    {
        for (int i = start; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                std::string key = arg.substr(2);
                if (i + 1 < argc && argv[i + 1][0] != '-')
                    values_[key] = argv[++i];
                else
                    values_[key] = "true";
            }
        }
    }

    std::string
    get(const std::string &key, const std::string &def = "") const
    {
        auto it = values_.find(key);
        return it == values_.end() ? def : it->second;
    }

    bool has(const std::string &key) const
    {
        return values_.count(key) > 0;
    }

  private:
    std::map<std::string, std::string> values_;
};

ServeSocketServer *gServer = nullptr;

void
handleSignal(int)
{
    if (gServer)
        gServer->requestStop();
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: uvmasync-serve --socket PATH --state DIR [--jobs N]\n"
        "                      [--config FILE] [--store DIR | "
        "--no-store]\n"
        "                      [--store-max-bytes N] [--paused]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv, 1);
    std::string socketPath = args.get("socket");
    std::string stateDir = args.get("state");
    if (socketPath.empty() || stateDir.empty()) {
        usage();
        return 2;
    }

    ServeOptions opt;
    opt.stateDir = stateDir;
    opt.paused = args.has("paused");
    if (args.has("jobs"))
        opt.jobs = static_cast<unsigned>(
            std::strtoul(args.get("jobs").c_str(), nullptr, 10));
    if (args.has("config"))
        opt.system = loadSystemConfig(args.get("config"));
    if (!args.has("no-store")) {
        opt.storeDir = args.get("store");
        if (opt.storeDir.empty()) {
            const char *env = std::getenv("UVMASYNC_STORE");
            if (env && *env)
                opt.storeDir = env;
        }
    }
    if (args.has("store-max-bytes"))
        opt.storeMaxBytes = std::strtoull(
            args.get("store-max-bytes").c_str(), nullptr, 10);

    // Construction preflights the state directory, opens the store,
    // and recovers persisted batches; the server constructor
    // preflights the socket. Both fatal() with actionable messages
    // on misconfiguration — before any client is accepted.
    ServeDaemon daemon(opt);
    ServeSocketServer server(daemon, socketPath);
    gServer = &server;
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);
    std::signal(SIGPIPE, SIG_IGN);

    // Status goes to stderr, unbuffered: stdout stays clean for
    // data, and a kill -9 cannot eat the banner the way it eats a
    // block-buffered stdout pipe — check.sh greps this line from
    // the daemon's stderr log after a crash-restart.
    ServeStats stats = daemon.stats();
    std::fprintf(stderr,
                 "info: serve: listening on %s (state %s, "
                 "%llu batch(es) recovered)\n",
                 socketPath.c_str(), stateDir.c_str(),
                 static_cast<unsigned long long>(
                     stats.batchesRecovered));

    server.run();

    gServer = nullptr;
    daemon.stop();
    std::fprintf(stderr, "info: serve: stopped\n");
    return 0;
}
