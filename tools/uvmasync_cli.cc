/**
 * @file
 * Command-line driver for the simulator — the tool a downstream user
 * reaches for before writing code against the library.
 *
 *   uvmasync list [micro|apps]
 *       Print the benchmark registry (the Table 2 rows).
 *
 *   uvmasync run --workload NAME [--size CLASS] [--mode MODE|all]
 *                [--runs N] [--blocks N] [--threads N]
 *                [--carveout KIB] [--seed N] [--csv] [--jobs N]
 *                [--inject PLAN.kv] [--inject-seed N]
 *       Run one experiment cell (or all five modes) and print the
 *       breakdown and counters, as a table or as CSV. Multi-mode
 *       runs and sweeps fan out over --jobs worker threads
 *       (default: UVMASYNC_JOBS, then hardware concurrency) with
 *       byte-identical output at any job count. --inject perturbs
 *       the run with a deterministic fault-injection plan; a point
 *       whose transfers exhaust their retry budget fails with a
 *       structured error while sibling points run to completion.
 *
 *   uvmasync sweep --kind blocks|threads|sharedmem
 *                  [--workload NAME] [--size CLASS] [--csv]
 *       Run one of the paper's Section 5 sensitivity sweeps.
 *
 *   uvmasync store stats|verify|gc|invalidate --store DIR
 *       Inspect or maintain a persistent result store offline.
 *
 * Crash safety: `--journal FILE` writes an append-only, fsync'd
 * JSONL write-ahead log of per-point outcomes in submission order
 * (byte-deterministic at any --jobs count); `--resume FILE` skips
 * the points the journal already holds — after a crash or kill the
 * merged output is byte-identical to an uninterrupted run. Failed
 * points are retried with the same seed (--retries, default 1) and
 * then quarantined: the run completes with partial results, an
 * explicit degraded-run banner, and a robustness table on stderr.
 * Output paths (--trace, --out, --journal) are opened before the
 * first simulated tick, so a bad path fails fast.
 *
 * Incremental sweeps: `--store DIR` (default: UVMASYNC_STORE env)
 * consults a persistent content-addressed result store before any
 * point simulates and appends never-seen results after — a warm
 * rerun simulates nothing yet prints byte-identical output. The
 * store composes with --journal/--resume (the journal is this run's
 * crash-safety record; the store is the cross-run cache) and is
 * keyed by both the full point configuration and a model-semantics
 * fingerprint, so a code or testbed change invalidates cleanly.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/cost_model.hh"
#include "analysis/lint.hh"
#include "common/csv.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "inject/inject_plan.hh"
#include "inject/injector.hh"
#include "io/fsck.hh"
#include "core/experiment.hh"
#include "core/parallel_runner.hh"
#include "core/report.hh"
#include "core/sweep.hh"
#include "journal/journal.hh"
#include "journal/json.hh"
#include "runtime/config_loader.hh"
#include "serve/batch_spec.hh"
#include "serve/server.hh"
#include "store/fingerprint.hh"
#include "store/result_store.hh"
#include "runtime/device.hh"
#include "trace/chrome_export.hh"
#include "trace/metrics.hh"
#include "workloads/job_loader.hh"
#include "workloads/registry.hh"

using namespace uvmasync;

namespace
{

/** Minimal --key value argument parser. */
class Args
{
  public:
    Args(int argc, char **argv, int start)
    {
        for (int i = start; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                std::string key = arg.substr(2);
                if (i + 1 < argc && argv[i + 1][0] != '-')
                    values_[key] = argv[++i];
                else
                    values_[key] = "true";
            } else {
                positional_.push_back(arg);
            }
        }
    }

    std::string
    get(const std::string &key, const std::string &def = "") const
    {
        auto it = values_.find(key);
        return it == values_.end() ? def : it->second;
    }

    bool has(const std::string &key) const
    {
        return values_.count(key) > 0;
    }

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

/**
 * Apply --jobs N (default: UVMASYNC_JOBS env, then hardware
 * concurrency). Output is byte-identical at any job count; only the
 * wall time changes. Returns false on a malformed value.
 */
bool
applyJobsFlag(const Args &args)
{
    if (!args.has("jobs"))
        return true;
    unsigned long jobs =
        std::strtoul(args.get("jobs").c_str(), nullptr, 10);
    if (jobs == 0) {
        std::fprintf(stderr, "--jobs needs a positive count\n");
        return false;
    }
    setGlobalJobs(static_cast<unsigned>(jobs));
    return true;
}

/**
 * Load --inject PLAN.kv and --inject-seed N. The plan is linted
 * before parsing so every problem is reported at once (fromKv alone
 * stops at the first); non-error findings — notably the UAL017
 * inert-plan note — print to stderr but do not block the run.
 */
void
loadInjectFlags(const Args &args, InjectPlan &plan,
                std::uint64_t &seed)
{
    if (args.has("inject-seed")) {
        seed = std::strtoull(args.get("inject-seed").c_str(),
                             nullptr, 10);
    }
    if (!args.has("inject"))
        return;
    KvConfig kv = KvConfig::fromFile(args.get("inject"));
    DiagnosticEngine diags = lintInjectPlan(kv);
    if (!diags.empty())
        std::cerr << diags.formatAll();
    if (diags.hasErrors()) {
        fatal("invalid injection plan '%s' (%s)",
              args.get("inject").c_str(), diags.summary().c_str());
    }
    plan = InjectPlan::fromKv(kv);
}

/**
 * Open an output destination before any simulation starts, so a bad
 * path fails in milliseconds instead of after an hours-long sweep.
 */
std::ofstream
openOutputOrDie(const std::string &path, const char *what)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open %s file '%s' for writing", what,
              path.c_str());
    return out;
}

/** Resolve --out FILE (preflight-opened) or stick with stdout. */
class OutSink
{
  public:
    explicit OutSink(const Args &args)
    {
        if (args.has("out")) {
            file_ = openOutputOrDie(args.get("out"), "--out");
            os_ = &file_;
        }
    }

    std::ostream &os() { return os_ ? *os_ : std::cout; }

  private:
    std::ofstream file_;
    std::ostream *os_ = nullptr;
};

/** --watchdog-max-ms / -events / -stall override the system config. */
void
applyWatchdogFlags(const Args &args, SystemConfig &system)
{
    if (args.has("watchdog-max-ms"))
        system.watchdog.maxSimTime = static_cast<Tick>(std::llround(
            std::stod(args.get("watchdog-max-ms")) * 1e9));
    if (args.has("watchdog-max-events"))
        system.watchdog.maxEvents =
            std::stoull(args.get("watchdog-max-events"));
    if (args.has("watchdog-max-stall"))
        system.watchdog.maxStallEvents =
            std::stoull(args.get("watchdog-max-stall"));
}

/**
 * Resolve --journal/--resume into an open RunJournal (or null). The
 * journal is opened before any simulation (fail-fast on bad paths);
 * --resume refuses traced runs because traces are not journaled, so
 * restored points could not reproduce their exports.
 */
std::unique_ptr<RunJournal>
setupJournal(const Args &args,
             const std::vector<ExperimentPoint> &points, bool traced)
{
    if (args.has("journal") && args.has("resume"))
        fatal("--journal and --resume are mutually exclusive; "
              "--resume appends to the journal it resumes from");
    if (args.has("resume")) {
        if (traced)
            fatal("--resume cannot be combined with --trace or "
                  "--metrics: traces are not journaled, so restored "
                  "points would export empty traces; rerun without "
                  "--resume for a traced run");
        std::unique_ptr<RunJournal> journal =
            RunJournal::resume(args.get("resume"), points);
        inform("resuming from '%s': %zu of %zu points already "
               "complete",
               journal->path().c_str(), journal->restoredCount(),
               points.size());
        return journal;
    }
    if (args.has("journal"))
        return RunJournal::create(args.get("journal"), points);
    return nullptr;
}

/**
 * Post-batch journal health: a hard write error (disk full, EIO)
 * makes the journal inert instead of killing the run; say so, with
 * the errno text, so the lost crash-safety is visible.
 */
void
reportJournalHealth(const RunJournal *journal, std::size_t lost)
{
    if (!journal || !journal->writeFailed())
        return;
    std::fprintf(stderr,
                 "journal: write to '%s' failed (%s); %zu record(s) "
                 "not journaled — run continued without crash "
                 "safety\n",
                 journal->path().c_str(),
                 journal->writeError().c_str(), lost);
}

/** --retries N (default 1): extra same-seed attempts per point. */
std::uint32_t
parseRetriesFlag(const Args &args)
{
    return static_cast<std::uint32_t>(
        std::stoul(args.get("retries", "1")));
}

/** --store DIR, falling back to the UVMASYNC_STORE environment. */
std::string
storeDirFlag(const Args &args)
{
    std::string dir = args.get("store");
    if (dir.empty()) {
        const char *env = std::getenv("UVMASYNC_STORE");
        if (env && *env)
            dir = env;
    }
    return dir;
}

/**
 * Resolve --store DIR / UVMASYNC_STORE into an open ResultStore (or
 * null when neither is set, or --no-store). The store is opened —
 * and its refusals (not a store, newer format, stale fingerprint
 * under --store-readonly) fire — before any simulation. The
 * fingerprint comes from the *effective* SystemConfig, after
 * --config and watchdog flags, so a custom testbed never shares
 * entries with the default one.
 */
std::unique_ptr<ResultStore>
setupStore(const Args &args, const SystemConfig &system)
{
    if (args.has("no-store"))
        return nullptr;
    std::string dir = storeDirFlag(args);
    if (dir.empty())
        return nullptr;
    StoreOptions opt;
    opt.readonly = args.has("store-readonly");
    if (args.has("store-max-bytes"))
        opt.maxBytes = std::strtoull(
            args.get("store-max-bytes").c_str(), nullptr, 10);
    return ResultStore::open(dir, modelSemanticsFingerprint(system),
                             opt);
}

/**
 * Session hit/miss/stored summary, to stderr so the run's stdout/CSV
 * stays byte-identical whether or not a store is attached.
 */
void
reportStoreStats(const ResultStore *store)
{
    if (!store)
        return;
    printTable(std::cerr,
               strfmt("result store '%s' (this run)",
                      store->dir().c_str()),
               storeStatsTable(store->stats()));
}

/**
 * Degraded-run reporting: a banner plus a robustness table (to
 * stderr, so CSV output stays clean) naming every quarantined point.
 * Returns the process exit code contribution (1 when degraded).
 */
int
reportRobustness(const std::vector<ExperimentPoint> &points,
                 const BatchResult &batch)
{
    if (!batch.degraded())
        return 0;
    warn("DEGRADED RUN: %zu of %zu points quarantined after "
         "retries; results are partial",
         batch.quarantined(), batch.points.size());
    printTable(std::cerr, "robustness (quarantined points)",
               robustnessTable(points, batch));
    return 1;
}

/** --lint off|warn|enforce (default enforce); --no-lint = off. */
bool
parseLintFlag(const Args &args, LintMode &out)
{
    out = LintMode::Enforce;
    if (args.has("no-lint")) {
        out = LintMode::Off;
        return true;
    }
    if (!args.has("lint"))
        return true;
    if (!parseLintMode(args.get("lint"), out)) {
        std::fprintf(stderr,
                     "--lint must be off, warn or enforce\n");
        return false;
    }
    return true;
}

int
cmdList(const Args &args)
{
    WorkloadRegistry &reg = WorkloadRegistry::instance();
    std::vector<std::string> names;
    if (!args.positional().empty() &&
        args.positional()[0] == "micro")
        names = reg.names(WorkloadSuite::Micro);
    else if (!args.positional().empty() &&
             args.positional()[0] == "apps")
        names = reg.names(WorkloadSuite::App);
    else
        names = reg.names();

    TextTable table({"name", "suite", "source", "domain", "input"});
    table.setAlign(1, TextTable::Align::Left);
    table.setAlign(2, TextTable::Align::Left);
    table.setAlign(3, TextTable::Align::Left);
    table.setAlign(4, TextTable::Align::Left);
    for (const std::string &name : names) {
        const WorkloadInfo &info = reg.get(name).info();
        table.addRow({name,
                      info.suite == WorkloadSuite::Micro ? "micro"
                                                         : "apps",
                      info.source, info.domain, info.inputShape});
    }
    table.print(std::cout);
    return 0;
}

void
emitCsvHeader(CsvWriter &csv)
{
    csv.writeRow({"workload", "mode", "size", "runs", "alloc_ms",
                  "memcpy_ms", "kernel_ms", "overall_ms",
                  "overall_cv", "faults", "l1_load_miss",
                  "l1_store_miss", "occupancy", "ctrl_instrs"});
}

void
emitCsvRow(CsvWriter &csv, const ExperimentResult &res,
           std::uint32_t runs)
{
    TimeBreakdown mean = res.meanBreakdown();
    csv.writeRow({res.workload, transferModeName(res.mode),
                  sizeClassName(res.size), std::to_string(runs),
                  fmtDouble(mean.allocPs / 1e9, 4),
                  fmtDouble(mean.transferPs / 1e9, 4),
                  fmtDouble(mean.kernelPs / 1e9, 4),
                  fmtDouble(mean.overallPs() / 1e9, 4),
                  fmtDouble(res.overallSamples().cv(), 5),
                  std::to_string(res.counters.faults),
                  fmtDouble(res.counters.l1LoadMissRate, 5),
                  fmtDouble(res.counters.l1StoreMissRate, 5),
                  fmtDouble(res.counters.occupancy, 4),
                  fmtDouble(res.counters.instrs.control, 0)});
}

/**
 * Export per-mode traces as one merged Chrome trace file into a
 * stream that was preflight-opened before the sweep started.
 */
void
exportTraceFile(std::ofstream &out,
                const std::vector<ChromeTraceJob> &jobs)
{
    writeChromeTrace(out, jobs);
}

/**
 * The journal/store identity of a job file's five-mode run: one
 * synthetic point per mode. The job file's *content* hash rides in
 * baseSeed (with --pinned folded in, since pinning changes transfer
 * costs) so editing the file invalidates a stale journal — or misses
 * in the result store — even though the job is not a registry
 * workload. The inject plan, inject seed and traced-ness land in the
 * options proper, where pointConfigHash covers them: without that, a
 * store populated by a clean run would poison an injected rerun.
 */
std::vector<ExperimentPoint>
jobFilePoints(const std::string &jobName, const std::string &path,
              bool pinned, const InjectPlan &injectPlan,
              std::uint64_t injectSeed, bool traced)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read job file '%s'", path.c_str());
    std::uint64_t h = 0xcbf29ce484222325ull;
    char c = 0;
    while (in.get(c)) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    if (pinned) {
        h ^= 1;
        h *= 0x100000001b3ull;
    }
    std::vector<ExperimentPoint> points;
    points.reserve(allTransferModes.size());
    for (TransferMode mode : allTransferModes) {
        ExperimentOptions opts;
        opts.runs = 0;
        opts.baseSeed = h;
        opts.inject = injectPlan;
        opts.injectSeed = injectSeed;
        opts.trace = traced;
        points.push_back(ExperimentPoint{jobName, mode, opts});
    }
    return points;
}

/** Run a job description file through the five modes directly. */
int
cmdRunJobFile(const Args &args)
{
    LintMode lint;
    if (!parseLintFlag(args, lint))
        return 1;

    KvConfig jobKv = KvConfig::fromFile(args.get("jobfile"));
    DiagnosticEngine loadDiags; // re-found by the lint pipeline
    Job job = jobFromConfig(jobKv, &loadDiags);
    SystemConfig system = args.has("config")
                              ? loadSystemConfig(args.get("config"))
                              : SystemConfig::a100Epyc();
    applyWatchdogFlags(args, system);
    enforceLint(system, job, args.get("jobfile"), lint, nullptr,
                &jobKv);
    Device device(system);
    RunOptions runOpts;
    runOpts.pinnedHost = args.has("pinned");

    InjectPlan injectPlan;
    std::uint64_t injectSeed = 0;
    loadInjectFlags(args, injectPlan, injectSeed);
    if (!injectSeed)
        injectSeed = injectPlan.seed;

    std::string tracePath = args.get("trace");
    bool wantMetrics = args.has("metrics");
    bool traced = !tracePath.empty() || wantMetrics;
    std::vector<Tracer> traces;
    traces.reserve(allTransferModes.size());

    // Preflight every output before the first simulated tick.
    OutSink out(args);
    std::optional<std::ofstream> traceOut;
    if (!tracePath.empty())
        traceOut.emplace(openOutputOrDie(tracePath, "--trace"));
    std::vector<ExperimentPoint> points =
        jobFilePoints(job.name, args.get("jobfile"),
                      runOpts.pinnedHost, injectPlan, injectSeed,
                      traced);
    std::unique_ptr<RunJournal> journal =
        setupJournal(args, points, traced);
    std::unique_ptr<ResultStore> store = setupStore(args, system);
    std::optional<StorePointCache> cache;
    if (store)
        cache.emplace(*store, points);

    bool anyFailed = false;
    std::size_t journalLost = 0;
    TextTable table({"mode", "gpu_kernel", "memcpy", "allocation",
                     "overall", "faults"});
    for (std::size_t i = 0; i < allTransferModes.size(); ++i) {
        TransferMode mode = allTransferModes[i];
        PointOutcome outcome;
        if (journal && journal->restore(i, outcome)) {
            outcome.restored = true;
            // A restored success still feeds the cross-run store
            // (insert dedups), so resumed and uninterrupted runs
            // leave identical store bytes behind.
            if (cache)
                cache->store(i, outcome);
        } else if (cache && cache->lookup(i, outcome)) {
            // Served from the store: journal it like a fresh result
            // (it is one, replayed), so warm and cold runs write
            // identical journals.
            outcome.cached = true;
            if (journal && !journal->commit(i, outcome))
                ++journalLost;
        } else {
            Tracer tracer;
            runOpts.tracer = traced ? &tracer : nullptr;
            // A fresh injector per mode: every mode sees the same
            // deterministic perturbation schedule from the same
            // streams.
            Injector injector(injectPlan, injectSalt(injectSeed, 0));
            runOpts.injector = &injector;
            outcome.attempts = 1;
            try {
                RunResult run = device.run(job, mode, runOpts);
                outcome.ok = true;
                outcome.status = PointStatus::Ok;
                outcome.result.workload = job.name;
                outcome.result.mode = mode;
                outcome.result.clean = run.breakdown;
                outcome.result.counters = run.counters;
            } catch (const PointTimeout &e) {
                outcome.status = PointStatus::Timeout;
                outcome.error = e.what();
            } catch (const TransferAborted &e) {
                outcome.status = PointStatus::Aborted;
                outcome.error = e.what();
            }
            traces.push_back(std::move(tracer));
            if (journal && !journal->commit(i, outcome))
                ++journalLost;
            if (cache)
                cache->store(i, outcome);
        }
        if (outcome.ok) {
            const TimeBreakdown &b = outcome.result.clean;
            table.addRow({transferModeName(mode),
                          fmtTime(b.kernelPs), fmtTime(b.transferPs),
                          fmtTime(b.allocPs), fmtTime(b.overallPs()),
                          fmtCount(static_cast<double>(
                              outcome.result.counters.faults))});
        } else {
            anyFailed = true;
            table.addRow({transferModeName(mode), "-", "-", "-",
                          "failed", "-"});
            std::fprintf(stderr, "%s under %s failed: %s\n",
                         job.name.c_str(), transferModeName(mode),
                         outcome.error.c_str());
        }
    }
    out.os() << job.name << " ("
             << fmtBytes(static_cast<double>(job.footprint()))
             << " footprint, from " << args.get("jobfile") << ")\n";
    table.print(out.os());

    if (traceOut) {
        std::vector<ChromeTraceJob> jobs;
        for (std::size_t i = 0; i < traces.size(); ++i) {
            jobs.push_back(ChromeTraceJob{
                job.name + "/" +
                    transferModeName(allTransferModes[i]),
                &traces[i]});
        }
        exportTraceFile(*traceOut, jobs);
    }
    if (wantMetrics) {
        for (std::size_t i = 0; i < traces.size(); ++i) {
            out.os() << "\n"
                     << job.name << " under "
                     << transferModeName(allTransferModes[i])
                     << " — resource metrics:\n"
                     << traceMetricsTable(
                            computeTraceMetrics(traces[i]));
        }
    }
    reportStoreStats(store.get());
    reportJournalHealth(journal.get(), journalLost);
    return anyFailed ? 1 : 0;
}

int
cmdRun(const Args &args)
{
    if (args.has("jobfile"))
        return cmdRunJobFile(args);
    std::string workload = args.get("workload");
    if (workload.empty()) {
        std::fprintf(stderr,
                     "run: --workload or --jobfile is required\n");
        return 1;
    }
    if (!WorkloadRegistry::instance().find(workload)) {
        std::fprintf(stderr, "unknown workload '%s' (try `list`)\n",
                     workload.c_str());
        return 1;
    }

    ExperimentOptions opts;
    if (!parseSizeClass(args.get("size", "super"), opts.size)) {
        std::fprintf(stderr, "unknown size class '%s'\n",
                     args.get("size").c_str());
        return 1;
    }
    opts.runs = static_cast<std::uint32_t>(
        std::stoul(args.get("runs", "30")));
    opts.baseSeed = std::stoull(args.get("seed", "42"));
    opts.geometry.gridBlocks = std::stoull(args.get("blocks", "0"));
    opts.geometry.threadsPerBlock = static_cast<std::uint32_t>(
        std::stoul(args.get("threads", "0")));
    opts.sharedCarveout =
        kib(std::stoull(args.get("carveout", "0")));
    if (!parseLintFlag(args, opts.lint))
        return 1;
    loadInjectFlags(args, opts.inject, opts.injectSeed);
    std::string tracePath = args.get("trace");
    bool wantMetrics = args.has("metrics");
    opts.trace = !tracePath.empty() || wantMetrics;

    std::vector<TransferMode> modes;
    std::string modeArg = args.get("mode", "all");
    if (modeArg == "all") {
        modes.assign(allTransferModes.begin(),
                     allTransferModes.end());
    } else {
        TransferMode m;
        if (!parseTransferMode(modeArg, m)) {
            std::fprintf(stderr, "unknown mode '%s'\n",
                         modeArg.c_str());
            return 1;
        }
        modes.push_back(m);
    }

    if (!applyJobsFlag(args))
        return 1;
    SystemConfig system = args.has("config")
                              ? loadSystemConfig(args.get("config"))
                              : SystemConfig::a100Epyc();
    applyWatchdogFlags(args, system);

    // Campaign advisor: the static cost model's verdict before any
    // simulated tick. Goes through inform() (stderr at the default
    // log level), so CSV/stdout streams stay byte-identical.
    if (opts.lint != LintMode::Off) {
        Job advisorJob = WorkloadRegistry::instance()
                             .get(workload)
                             .makeJob(opts.size, opts.geometry);
        CostReport rep = analyzeCost(system, advisorJob);
        inform("advisor: %s @ %s — predicted winner %s, async/uvm "
               "= %s (%s); run `uvmasync-lint --analyze --workload "
               "%s --size %s` for the full cost table",
               workload.c_str(),
               sizeClassName(opts.size),
               transferModeName(rep.bestMode),
               fmtDouble(rep.asyncOverUvm, 2).c_str(),
               rep.asyncOverUvm > 1.0 ? "uvm family predicted ahead"
                                      : "explicit family predicted "
                                        "ahead",
               workload.c_str(), sizeClassName(opts.size));
    }

    std::vector<ExperimentPoint> points;
    points.reserve(modes.size());
    for (TransferMode m : modes)
        points.push_back(ExperimentPoint{workload, m, opts});

    // Preflight every output before the first simulated tick.
    OutSink out(args);
    std::optional<std::ofstream> traceOut;
    if (!tracePath.empty())
        traceOut.emplace(openOutputOrDie(tracePath, "--trace"));
    std::unique_ptr<RunJournal> journal =
        setupJournal(args, points, opts.trace);
    std::unique_ptr<ResultStore> store = setupStore(args, system);
    std::optional<StorePointCache> cache;
    if (store)
        cache.emplace(*store, points);

    RunPolicy policy;
    policy.retries = parseRetriesFlag(args);
    policy.journal = journal.get();
    policy.cache = cache ? &*cache : nullptr;
    ParallelRunner runner(system);
    BatchResult batch = runner.runPoints(points, policy);
    reportStoreStats(store.get());
    reportJournalHealth(journal.get(), batch.metrics.journalErrors);

    // Failed points (a poisoned configuration, an injected transfer
    // that exhausted its retries, a watchdog trip) are retried, then
    // quarantined and reported individually; the surviving points
    // still print and export normally.
    bool anyFailed = reportRobustness(points, batch) != 0;
    std::vector<ExperimentResult> results;
    results.reserve(batch.points.size());
    for (std::size_t i = 0; i < batch.points.size(); ++i) {
        if (batch.points[i].ok) {
            results.push_back(std::move(batch.points[i].result));
            continue;
        }
        std::fprintf(stderr, "%s/%s failed: %s\n",
                     points[i].workload.c_str(),
                     transferModeName(points[i].mode),
                     batch.points[i].error.c_str());
    }

    if (traceOut) {
        std::vector<ChromeTraceJob> jobs;
        for (const ExperimentResult &res : results) {
            jobs.push_back(ChromeTraceJob{
                res.workload + "/" + transferModeName(res.mode),
                &res.trace});
        }
        exportTraceFile(*traceOut, jobs);
    }

    if (args.has("csv")) {
        CsvWriter csv(out.os());
        emitCsvHeader(csv);
        for (const ExperimentResult &res : results)
            emitCsvRow(csv, res, opts.runs);
        if (wantMetrics) {
            for (const ExperimentResult &res : results) {
                out.os() << "\n";
                csv.writeRow({"trace_metrics", res.workload,
                              transferModeName(res.mode)});
                writeTraceMetricsCsv(out.os(),
                                     computeTraceMetrics(res.trace));
            }
        }
        return anyFailed ? 1 : 0;
    }

    TextTable table({"mode", "gpu_kernel", "memcpy", "allocation",
                     "overall", "cv", "faults", "l1 load miss"});
    for (const ExperimentResult &res : results) {
        TimeBreakdown mean = res.meanBreakdown();
        table.addRow({transferModeName(res.mode),
                      fmtTime(mean.kernelPs),
                      fmtTime(mean.transferPs),
                      fmtTime(mean.allocPs),
                      fmtTime(mean.overallPs()),
                      fmtDouble(res.overallSamples().cv(), 4),
                      fmtCount(static_cast<double>(
                          res.counters.faults)),
                      fmtDouble(res.counters.l1LoadMissRate, 3)});
    }
    out.os() << workload << " @ " << sizeClassName(opts.size) << " ("
             << opts.runs << " runs)\n";
    table.print(out.os());
    if (wantMetrics) {
        printTable(out.os(), "per-resource trace metrics",
                   traceUtilizationTable({results}));
    }
    return anyFailed ? 1 : 0;
}

int
cmdProfile(const Args &args)
{
    std::string workload = args.get("workload");
    if (workload.empty() && !args.has("jobfile")) {
        std::fprintf(stderr,
                     "profile: --workload or --jobfile is required\n");
        return 1;
    }

    Job job;
    if (args.has("jobfile")) {
        job = loadJobFile(args.get("jobfile"));
    } else {
        SizeClass size;
        if (!parseSizeClass(args.get("size", "super"), size)) {
            std::fprintf(stderr, "unknown size class '%s'\n",
                         args.get("size").c_str());
            return 1;
        }
        const Workload *w =
            WorkloadRegistry::instance().find(workload);
        if (!w) {
            std::fprintf(stderr, "unknown workload '%s'\n",
                         workload.c_str());
            return 1;
        }
        job = w->makeJob(size);
    }

    TransferMode mode = TransferMode::Standard;
    if (args.has("mode") &&
        !parseTransferMode(args.get("mode"), mode)) {
        std::fprintf(stderr, "unknown mode '%s'\n",
                     args.get("mode").c_str());
        return 1;
    }

    SystemConfig system = args.has("config")
                              ? loadSystemConfig(args.get("config"))
                              : SystemConfig::a100Epyc();
    Device device(system);
    RunResult run = device.run(job, mode);

    TextTable table({"kernel", "launches", "total time", "stalls",
                     "occupancy", "l1 load miss", "l1 store miss",
                     "ctrl instrs", "faults"});
    for (const KernelProfile &prof : run.kernelProfiles) {
        table.addRow(
            {prof.name, std::to_string(prof.launches),
             fmtTime(static_cast<double>(prof.totalTime)),
             fmtTime(static_cast<double>(prof.stallTime)),
             fmtDouble(prof.occupancy, 2),
             fmtDouble(prof.l1LoadMissRate, 4),
             fmtDouble(prof.l1StoreMissRate, 4),
             fmtCount(prof.instrs.control),
             fmtCount(static_cast<double>(prof.faults))});
    }
    std::cout << job.name << " under " << transferModeName(mode)
              << " — per-kernel profile (kernel total "
              << fmtTime(run.breakdown.kernelPs) << "):\n";
    table.print(std::cout);
    return 0;
}

int
cmdTimeline(const Args &args)
{
    Job job;
    if (args.has("jobfile")) {
        job = loadJobFile(args.get("jobfile"));
    } else {
        std::string workload = args.get("workload");
        if (workload.empty()) {
            std::fprintf(
                stderr,
                "timeline: --workload or --jobfile is required\n");
            return 1;
        }
        SizeClass size;
        if (!parseSizeClass(args.get("size", "super"), size)) {
            std::fprintf(stderr, "unknown size class '%s'\n",
                         args.get("size").c_str());
            return 1;
        }
        const Workload *w =
            WorkloadRegistry::instance().find(workload);
        if (!w) {
            std::fprintf(stderr, "unknown workload '%s'\n",
                         workload.c_str());
            return 1;
        }
        job = w->makeJob(size);
    }

    SystemConfig system = args.has("config")
                              ? loadSystemConfig(args.get("config"))
                              : SystemConfig::a100Epyc();
    Device device(system);
    std::vector<TransferMode> modes;
    std::string modeArg = args.get("mode", "all");
    if (modeArg == "all") {
        modes.assign(allTransferModes.begin(),
                     allTransferModes.end());
    } else {
        TransferMode m;
        if (!parseTransferMode(modeArg, m)) {
            std::fprintf(stderr, "unknown mode '%s'\n",
                         modeArg.c_str());
            return 1;
        }
        modes.push_back(m);
    }
    for (TransferMode mode : modes) {
        RunResult run = device.run(job, mode);
        std::cout << job.name << " under " << transferModeName(mode)
                  << " (wall "
                  << fmtTime(static_cast<double>(run.wallEnd))
                  << "):\n"
                  << run.timeline.gantt() << "\n";
    }
    return 0;
}

int
cmdSweep(const Args &args)
{
    std::string kind = args.get("kind");
    std::string workload = args.get("workload", "vector_seq");
    ExperimentOptions opts;
    if (!parseSizeClass(args.get("size", "super"), opts.size)) {
        std::fprintf(stderr, "unknown size class '%s'\n",
                     args.get("size").c_str());
        return 1;
    }
    opts.runs = static_cast<std::uint32_t>(
        std::stoul(args.get("runs", "5")));
    if (!applyJobsFlag(args))
        return 1;

    loadInjectFlags(args, opts.inject, opts.injectSeed);

    SystemConfig system = args.has("config")
                              ? loadSystemConfig(args.get("config"))
                              : SystemConfig::a100Epyc();
    applyWatchdogFlags(args, system);
    SweepGrid grid;
    std::string unit;
    if (kind == "blocks") {
        grid = blockSweepGrid(
            workload, {4096, 2048, 1024, 512, 256, 128, 64, 32, 16},
            opts);
        unit = "blocks";
    } else if (kind == "threads") {
        grid = threadSweepGrid(workload,
                               {1024, 512, 256, 128, 64, 32}, 64,
                               opts);
        unit = "threads";
    } else if (kind == "sharedmem") {
        grid = sharedMemSweepGrid(
            workload,
            {kib(2), kib(4), kib(8), kib(16), kib(32), kib(64),
             kib(128)},
            opts);
        unit = "carveout bytes";
    } else {
        std::fprintf(stderr,
                     "sweep: --kind must be blocks|threads|"
                     "sharedmem\n");
        return 1;
    }

    // Preflight every output before the first simulated tick.
    OutSink out(args);
    std::unique_ptr<RunJournal> journal =
        setupJournal(args, grid.points, /*traced=*/false);
    std::unique_ptr<ResultStore> store = setupStore(args, system);
    std::optional<StorePointCache> cache;
    if (store)
        cache.emplace(*store, grid.points);

    RunPolicy policy;
    policy.retries = parseRetriesFlag(args);
    policy.journal = journal.get();
    policy.cache = cache ? &*cache : nullptr;
    ParallelRunner runner(system);
    BatchResult batch = runner.runPoints(grid.points, policy);
    reportStoreStats(store.get());
    reportJournalHealth(journal.get(), batch.metrics.journalErrors);
    bool anyFailed = reportRobustness(grid.points, batch) != 0;
    std::vector<SweepPoint> points =
        assembleSweepPoints(grid, batch);

    if (args.has("csv")) {
        CsvWriter csv(out.os());
        csv.writeRow({unit, "mode", "overall_ms"});
        for (const SweepPoint &p : points) {
            for (const ExperimentResult &res : p.modes) {
                csv.writeRow(
                    {std::to_string(p.value),
                     transferModeName(res.mode),
                     fmtDouble(res.meanBreakdown().overallPs() / 1e9,
                               4)});
            }
        }
        return anyFailed ? 1 : 0;
    }

    TextTable table({unit, "standard", "async", "uvm",
                     "uvm_prefetch", "uvm_prefetch_async"});
    for (const SweepPoint &p : points) {
        std::vector<std::string> row = {std::to_string(p.value)};
        for (TransferMode m : allTransferModes) {
            row.push_back(fmtTime(
                findMode(p.modes, m).meanBreakdown().overallPs()));
        }
        table.addRow(row);
    }
    out.os() << workload << " " << kind << " sweep @ "
             << sizeClassName(opts.size) << "\n";
    table.print(out.os());
    return anyFailed ? 1 : 0;
}

/**
 * Offline store maintenance. All subcommands walk the directory with
 * surveyStore()/gcStore()/invalidateStore() — never the simulating
 * open() path — so they work on corrupt stores (that is their job).
 */
int
cmdStore(const Args &args)
{
    std::string op = args.positional().empty()
                         ? std::string()
                         : args.positional()[0];
    std::string dir = storeDirFlag(args);
    if (dir.empty()) {
        std::fprintf(stderr, "store: --store DIR (or the "
                             "UVMASYNC_STORE environment variable) "
                             "is required\n");
        return 1;
    }

    if (op == "stats") {
        printTable(std::cout,
                   strfmt("result store '%s'", dir.c_str()),
                   storeSurveyTable(surveyStore(dir)));
        return 0;
    }
    if (op == "verify") {
        StoreSurvey survey = surveyStore(dir);
        printTable(std::cout,
                   strfmt("result store '%s'", dir.c_str()),
                   storeSurveyTable(survey));
        if (!survey.clean()) {
            std::fprintf(stderr,
                         "store: '%s' is NOT clean (%zu corrupt "
                         "records, %zu torn tails, %zu bad headers"
                         "%s); corrupt entries are never served — "
                         "run `uvmasync store gc --store %s` to "
                         "drop them\n",
                         dir.c_str(), survey.corruptRecords,
                         survey.tornTails, survey.badHeaders,
                         survey.metaOk ? ""
                                       : ", unusable meta.json",
                         dir.c_str());
            return 1;
        }
        std::printf("store '%s' is clean\n", dir.c_str());
        return 0;
    }
    if (op == "gc") {
        std::uint64_t maxBytes = 0;
        if (args.has("store-max-bytes"))
            maxBytes = std::strtoull(
                args.get("store-max-bytes").c_str(), nullptr, 10);
        StoreGcResult gc = gcStore(dir, maxBytes);
        std::printf("store '%s': dropped %zu corrupt/torn records, "
                    "evicted %llu segments (%llu bytes); %llu -> "
                    "%llu bytes\n",
                    dir.c_str(), gc.droppedRecords,
                    static_cast<unsigned long long>(
                        gc.evictedSegments),
                    static_cast<unsigned long long>(gc.evictedBytes),
                    static_cast<unsigned long long>(gc.bytesBefore),
                    static_cast<unsigned long long>(gc.bytesAfter));
        return 0;
    }
    if (op == "invalidate") {
        std::size_t dropped = 0;
        if (args.has("fingerprint")) {
            std::uint64_t fp = 0;
            if (!parseHexU64(args.get("fingerprint"), fp)) {
                std::fprintf(stderr,
                             "store: --fingerprint must be 16 hex "
                             "digits (as printed by `store "
                             "stats`)\n");
                return 1;
            }
            dropped = invalidateStore(dir, &fp);
        } else {
            dropped = invalidateStore(dir, nullptr);
        }
        std::printf("store '%s': dropped %zu records\n", dir.c_str(),
                    dropped);
        return 0;
    }

    std::fprintf(stderr, "store: unknown operation '%s' (expected "
                         "stats, verify, gc or invalidate)\n",
                 op.c_str());
    return 1;
}

/**
 * Deep-verify (and with --repair, fix) durable state: daemon state
 * directories, result stores, or standalone journal files, each
 * auto-detected. Exit 0 = consistent (possibly after repair), 1 =
 * repairable damage found, 2 = unrecoverable.
 */
int
cmdFsck(const Args &args)
{
    FsckOptions opt;
    opt.repair = args.has("repair");
    // --repair is a bare switch, but the generic parser treats any
    // following non-dash token as its value; reclaim that token as
    // the first path so `fsck --repair PATH...` works.
    std::vector<std::string> paths = args.positional();
    std::string repairValue = args.get("repair");
    if (opt.repair && repairValue != "true")
        paths.insert(paths.begin(), repairValue);

    if (paths.empty()) {
        std::fprintf(stderr,
                     "fsck: at least one PATH is required (a daemon "
                     "state dir, a store dir, or a journal file)\n");
        return 2;
    }

    int exitCode = 0;
    for (const std::string &path : paths) {
        FsckReport report = fsckPath(path, opt);
        for (const FsckFinding &finding : report.findings)
            std::fprintf(stderr, "fsck: %s\n",
                         fsckFindingLine(finding).c_str());
        printTable(std::cout, strfmt("fsck '%s'", path.c_str()),
                   fsckSummaryTable(report));
        int code = report.exitCode();
        if (code == 0) {
            std::printf("fsck '%s': consistent%s\n", path.c_str(),
                        report.repairsApplied > 0 ? " (after repair)"
                                                  : "");
        } else {
            std::fprintf(stderr,
                         "fsck: '%s' is NOT consistent%s\n",
                         path.c_str(),
                         code == 1 && !opt.repair
                             ? "; rerun with --repair to truncate "
                               "torn tails and quarantine "
                               "unrecoverable files"
                             : "");
        }
        exitCode = std::max(exitCode, code);
    }
    return exitCode;
}

/** Build a daemon submission payload from the run-style flags. */
bool
clientBatchPayload(const Args &args, std::string &payload)
{
    std::string workload = args.get("workload");
    if (workload.empty()) {
        std::fprintf(stderr, "client: --workload is required\n");
        return false;
    }
    // Hand the flags to the daemon verbatim (as batch.* keys): the
    // daemon owns validation, so a typo'd size or mode comes back as
    // one actionable Error frame instead of a local guess.
    payload = "batch.workload = " + workload + "\n";
    payload += "batch.size = " + args.get("size", "super") + "\n";
    payload += "batch.runs = " + args.get("runs", "30") + "\n";
    payload += "batch.seed = " + args.get("seed", "42") + "\n";
    payload += "batch.mode = " + args.get("mode", "all") + "\n";
    payload += "batch.blocks = " + args.get("blocks", "0") + "\n";
    payload += "batch.threads = " + args.get("threads", "0") + "\n";
    payload +=
        "batch.carveout_kib = " + args.get("carveout", "0") + "\n";
    payload += "batch.retries = " + args.get("retries", "1") + "\n";
    return true;
}

/**
 * Client of a running campaign daemon (`uvmasync-serve`). Streams
 * print the batch's journal record lines — submission-order hexfloat
 * JSONL, byte-identical to the record lines `uvmasync run --journal`
 * writes for the same batch — to stdout; everything advisory
 * (handles, states, errors) goes to stderr so streams stay cmp-able.
 */
int
cmdClient(const Args &args)
{
    std::string op = args.positional().empty()
                         ? std::string()
                         : args.positional()[0];
    std::string socket = args.get("socket");
    if (socket.empty()) {
        std::fprintf(stderr, "client: --socket PATH is required\n");
        return 1;
    }

    ServeClient client;
    std::string error;
    if (!client.connect(socket, error)) {
        std::fprintf(stderr, "client: %s\n", error.c_str());
        return 1;
    }

    if (op == "submit" || op == "run") {
        std::string payload;
        if (!clientBatchPayload(args, payload))
            return 1;
        std::string handle;
        if (!client.submit(payload, handle, error)) {
            std::fprintf(stderr, "client: submit failed: %s\n",
                         error.c_str());
            return 1;
        }
        if (op == "submit") {
            std::printf("batch=%s\n", handle.c_str());
            return 0;
        }
        // run = submit + blocking stream: the handle goes to stderr
        // so stdout is exactly the result stream.
        std::fprintf(stderr, "batch=%s\n", handle.c_str());
        std::string lines;
        std::string state;
        if (!client.stream(handle, 0, true, lines, state, error)) {
            std::fprintf(stderr, "client: stream failed: %s\n",
                         error.c_str());
            return 1;
        }
        std::fwrite(lines.data(), 1, lines.size(), stdout);
        if (state != "done") {
            std::fprintf(stderr, "client: batch %s finished %s\n",
                         handle.c_str(), state.c_str());
            return 1;
        }
        return 0;
    }
    if (op == "status") {
        std::string reply;
        if (!client.status(args.get("handle"), reply, error)) {
            std::fprintf(stderr, "client: %s\n", error.c_str());
            return 1;
        }
        std::fwrite(reply.data(), 1, reply.size(), stdout);
        return 0;
    }
    if (op == "stream") {
        std::size_t from = static_cast<std::size_t>(
            std::strtoull(args.get("from", "0").c_str(), nullptr,
                          10));
        bool wait = !args.has("no-wait");
        std::string lines;
        std::string state;
        if (!client.stream(args.get("handle"), from, wait, lines,
                           state, error)) {
            std::fprintf(stderr, "client: %s\n", error.c_str());
            return 1;
        }
        std::fwrite(lines.data(), 1, lines.size(), stdout);
        std::fprintf(stderr, "state=%s\n", state.c_str());
        return state == "done" || !wait ? 0 : 1;
    }
    if (op == "cancel") {
        std::string state;
        if (!client.cancel(args.get("handle"), state, error)) {
            std::fprintf(stderr, "client: %s\n", error.c_str());
            return 1;
        }
        std::printf("state=%s\n", state.c_str());
        return 0;
    }
    if (op == "stats") {
        std::string reply;
        if (!client.stats(reply, error)) {
            std::fprintf(stderr, "client: %s\n", error.c_str());
            return 1;
        }
        std::fwrite(reply.data(), 1, reply.size(), stdout);
        return 0;
    }
    if (op == "shutdown") {
        if (!client.shutdown(error)) {
            std::fprintf(stderr, "client: %s\n", error.c_str());
            return 1;
        }
        return 0;
    }

    std::fprintf(stderr,
                 "client: unknown operation '%s' (expected submit, "
                 "run, status, stream, cancel, stats or shutdown)\n",
                 op.c_str());
    return 1;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  uvmasync list [micro|apps]\n"
        "  uvmasync run --workload NAME [--size CLASS] "
        "[--mode MODE|all] [--runs N]\n"
        "               [--blocks N] [--threads N] [--carveout KIB] "
        "[--seed N] [--config FILE] [--csv] [--jobs N]\n"
        "               [--lint off|warn|enforce] [--no-lint]\n"
        "               [--trace FILE.json] [--metrics] "
        "[--out FILE]\n"
        "               [--inject PLAN.kv] [--inject-seed N]\n"
        "               [--journal FILE.jsonl | --resume "
        "FILE.jsonl] [--retries N]\n"
        "               [--store DIR] [--store-readonly] "
        "[--no-store] [--store-max-bytes N]\n"
        "               [--watchdog-max-ms MS] "
        "[--watchdog-max-events N] [--watchdog-max-stall N]\n"
        "  uvmasync sweep --kind blocks|threads|sharedmem "
        "[--workload NAME] [--size CLASS] [--csv] [--jobs N]\n"
        "               [--out FILE] [--inject PLAN.kv] "
        "[--journal FILE.jsonl | --resume FILE.jsonl] "
        "[--retries N]\n"
        "               [--store DIR] [--store-readonly] "
        "[--no-store] [--store-max-bytes N]\n"
        "  uvmasync profile --workload NAME|--jobfile FILE "
        "[--mode MODE] [--size CLASS]\n"
        "  uvmasync timeline --workload NAME|--jobfile FILE "
        "[--mode MODE|all] [--size CLASS]\n"
        "  uvmasync store stats|verify|gc|invalidate --store DIR\n"
        "               [--store-max-bytes N] [--fingerprint HEX16]\n"
        "  uvmasync fsck PATH... [--repair]\n"
        "  uvmasync client "
        "submit|run|status|stream|cancel|stats|shutdown --socket "
        "PATH\n"
        "               [--workload NAME] [--size CLASS] [--mode "
        "MODE|all] [--runs N] [--seed N]\n"
        "               [--blocks N] [--threads N] [--carveout KIB] "
        "[--retries N]\n"
        "               [--handle HEX16] [--from N] [--no-wait]\n"
        "\n"
        "crash safety: --journal FILE writes an fsync'd JSONL "
        "write-ahead log of per-point\n"
        "outcomes; --resume FILE skips the points it already holds "
        "and appends the rest.\n"
        "Failed points are retried --retries times with the same "
        "seed, then quarantined;\n"
        "the run completes with partial results and a robustness "
        "report on stderr.\n"
        "\n"
        "result store: --store DIR (default: UVMASYNC_STORE env; "
        "--no-store disables) serves\n"
        "previously simulated points from a persistent "
        "content-addressed cache and appends\n"
        "never-seen results, so a warm rerun simulates nothing yet "
        "prints byte-identical\n"
        "output. --store-readonly serves hits without writing; "
        "--store-max-bytes N evicts\n"
        "least-recently-used segments past a byte budget.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    registerAllWorkloads();

    std::string cmd = argv[1];
    Args args(argc, argv, 2);
    if (cmd == "list")
        return cmdList(args);
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "profile")
        return cmdProfile(args);
    if (cmd == "timeline")
        return cmdTimeline(args);
    if (cmd == "store")
        return cmdStore(args);
    if (cmd == "fsck")
        return cmdFsck(args);
    if (cmd == "client")
        return cmdClient(args);
    usage();
    return 1;
}
