/**
 * @file
 * uvmasync-bench: the repo's perf-trajectory harness.
 *
 * Runs a pinned set of self-timed phases and emits a BenchReport
 * (BENCH_*.json) that the repo commits as its performance record:
 *
 *  - event_loop_calendar / event_loop_heap: events/sec through the
 *    production two-level calendar EventQueue and through the
 *    reference binary-heap queue, driving the *identical*
 *    deterministic schedule (self-rescheduling chains, same-tick
 *    bursts, >16-byte callback captures so std::function costs are
 *    realistic). Their ratio is the committed, machine-independent
 *    `calendar_vs_heap_speedup`.
 *  - migration_hotpath: requestChunk accesses/sec through the
 *    sealed-variant prefetcher dispatch (mixed faults and resident
 *    hits over an oversubscription-free range).
 *  - registry_slice: points/sec over a pinned registry slice — all
 *    five transfer modes x {saxpy, gemv, 2DCONV} at Tiny size.
 *  - store_lookup: lookups/sec against a populated on-disk result
 *    store (the hot path a warm incremental sweep pays per point),
 *    mixed hits and misses over a sharded key space.
 *  - serve_roundtrip: batches/sec through the campaign daemon over
 *    its AF_UNIX socket — submit + full result stream of a
 *    one-point batch, warm from the shared store, so the number is
 *    the service overhead (framing, fsync'd journal, scheduler
 *    handoff) a cached campaign point pays, not simulation time.
 *  - null_sink_probe: the same arithmetic kernel with NullTraceSink
 *    span emission vs without; `null_sink_overhead_pct` must stay
 *    under the zero-cost gate.
 *
 * Every phase discards warmup reps and reports median-of-N. The
 * machine fingerprint and peak RSS are recorded for provenance but
 * excluded from comparisons (--compare gates on rates and derived
 * ratios only).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "common/logging.hh"
#include "core/experiment.hh"
#include "gpu/transfer_mode.hh"
#include "mem/device_memory.hh"
#include "mem/page_table.hh"
#include "perf/bench_report.hh"
#include "perf/harness.hh"
#include "serve/daemon.hh"
#include "serve/server.hh"
#include "sim/event_queue.hh"
#include "sim/heap_event_queue.hh"
#include "store/result_store.hh"
#include "workloads/registry.hh"
#include "xfer/migration_engine.hh"
#include "xfer/pcie_link.hh"

namespace uvmasync
{
namespace
{

struct BenchOptions
{
    std::string outPath;
    std::string comparePath;
    std::string label = "BENCH_8";
    double tolerance = 0.15;
    std::uint32_t reps = 5;
    std::uint32_t warmup = 1;
    std::uint64_t events = 300000;
    std::uint64_t accesses = 200000;
    std::uint64_t probeIters = 8000000;
    std::uint64_t storeLookups = 200000;
    // Long enough per rep (~80 ms) that single scheduler-wakeup
    // hiccups amortize instead of dominating the median.
    std::uint64_t serveRoundtrips = 64;
    double requireSpeedup = 0.0;
    double maxNullOverheadPct = 0.0;
    bool skipRegistry = false;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: uvmasync-bench [--out FILE] [--label NAME]\n"
        "         [--reps N] [--warmup N] [--events N] [--accesses N]\n"
        "         [--compare BASELINE.json] [--tolerance FRAC]\n"
        "         [--require-speedup X] [--max-null-overhead PCT]\n"
        "         [--skip-registry]\n");
    std::exit(code);
}

std::uint64_t
xorshift(std::uint64_t &s)
{
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
}

/**
 * Deterministic event-loop load, identical for any queue with the
 * EventQueue scheduling interface. Self-rescheduling chains whose
 * deltas mix same-tick bursts (1/8 of events) with spreads across
 * many calendar slices; callbacks capture 24 bytes so std::function
 * pays its real (beyond-SBO) cost in both queues.
 */
template <typename Queue>
struct EventLoad
{
    Queue &q;
    std::uint64_t remaining;
    std::uint64_t bursts = 0;
    std::uint64_t acc = 0;

    void
    pump(std::uint64_t rng)
    {
        if (remaining == 0)
            return;
        --remaining;
        std::uint64_t salt = xorshift(rng);
        Tick delta;
        if ((salt & 7) == 0) {
            delta = 0; // same-tick burst member
            ++bursts;
        } else {
            delta = (salt >> 32) & 0x3fff;
        }
        EventLoad *self = this;
        std::uint64_t tag = salt * 0x9e3779b97f4a7c15ull;
        q.scheduleIn(delta, [self, salt, tag] {
            self->acc += salt ^ tag;
            self->pump(salt);
            // Occasionally widen the chain: a dispatch spawning two
            // events keeps the queue populated and out of lockstep.
            if ((salt & 31) == 0)
                self->pump(tag);
        });
    }

    std::uint64_t
    run(std::uint64_t total)
    {
        remaining = total;
        std::uint64_t seed = 0x2545f4914f6cdd1dull;
        for (int chain = 0; chain < 32 && remaining; ++chain)
            pump(xorshift(seed) + static_cast<std::uint64_t>(chain));
        q.run();
        return acc;
    }
};

/** Sink for results the optimizer must not discard. */
volatile std::uint64_t g_sink = 0;

template <typename Queue>
BenchPhase
eventLoopPhase(const char *name, const BenchOptions &opt)
{
    std::uint64_t rebuilds = 0;
    std::uint64_t bursts = 0;
    BenchPhase phase = runBenchPhase(
        name, "events/sec", opt.events, opt.reps, opt.warmup, [&] {
            Queue q;
            EventLoad<Queue> load{q, 0};
            g_sink = load.run(opt.events);
            bursts = load.bursts;
            if constexpr (std::is_same_v<Queue, EventQueue>)
                rebuilds = q.rebuilds();
        });
    phase.breakdown.emplace_back("burst_events",
                                 static_cast<double>(bursts));
    if constexpr (std::is_same_v<Queue, EventQueue>) {
        phase.breakdown.emplace_back("calendar_rebuilds",
                                     static_cast<double>(rebuilds));
    }
    return phase;
}

BenchPhase
migrationHotpathPhase(const BenchOptions &opt)
{
    std::uint64_t faults = 0;
    BenchPhase phase = runBenchPhase(
        "migration_hotpath", "accesses/sec", opt.accesses, opt.reps,
        opt.warmup, [&] {
            PageTable table("pt");
            DeviceMemory devMem("hbm", gib(1),
                                Bandwidth::fromGBps(1400.0));
            PcieLink link("pcie", PcieConfig{});
            UvmConfig cfg;
            cfg.chunkBytes = kib(64);
            cfg.demandPrefetcher = PrefetcherKind::Tree;
            MigrationEngine engine("uvm", cfg, table, devMem, link);
            std::size_t id =
                table.addRange("buf", mib(64), cfg.chunkBytes);
            engine.beginJob();
            std::uint64_t chunks = table.range(id).chunkCount();
            std::uint64_t rng = 0x9e3779b97f4a7c15ull;
            Tick now = 0;
            std::uint64_t acc = 0;
            std::uint64_t cursor = 0;
            for (std::uint64_t i = 0; i < opt.accesses; ++i) {
                std::uint64_t r = xorshift(rng);
                // Mostly sequential sweep (prefetch-friendly) with
                // occasional strided jumps that cool the prefetcher.
                cursor = (r & 15) == 0 ? (r >> 24) % chunks
                                       : (cursor + 1) % chunks;
                now = engine.requestChunk(id, cursor, now);
                acc += now;
            }
            g_sink = acc;
            faults = engine.jobFaults();
        });
    phase.breakdown.emplace_back("demand_faults",
                                 static_cast<double>(faults));
    phase.breakdown.emplace_back(
        "resident_hits",
        static_cast<double>(opt.accesses - faults));
    return phase;
}

BenchPhase
registrySlicePhase(const BenchOptions &opt)
{
    registerAllWorkloads();
    static const char *slice[] = {"saxpy", "gemv", "2DCONV"};
    constexpr std::size_t nWorkloads = 3;
    std::uint64_t points =
        nWorkloads * allTransferModes.size();

    std::vector<std::pair<std::string, double>> perMode;
    BenchPhase phase = runBenchPhase(
        "registry_slice", "points/sec", points, opt.reps, opt.warmup,
        [&] {
            Experiment ex;
            ExperimentOptions eopts;
            eopts.size = SizeClass::Tiny;
            eopts.runs = 2;
            eopts.lint = LintMode::Off;
            perMode.clear();
            for (TransferMode mode : allTransferModes) {
                double modeNs = timeOnceNs([&] {
                    for (const char *w : slice) {
                        ExperimentResult r = ex.run(w, mode, eopts);
                        g_sink = g_sink + r.counters.faults;
                    }
                });
                perMode.emplace_back(transferModeName(mode), modeNs);
            }
        });
    phase.breakdown = std::move(perMode);
    return phase;
}

/**
 * The warm-sweep hot path: lookups against a populated on-disk
 * store. The store is built once in a scratch directory (4096
 * records, spread over all 256 shards by the splitmix-mixed key) and
 * reopened so the timed reps exercise the loaded-map path exactly as
 * ParallelRunner does; 3/4 of the probes hit, 1/4 miss.
 */
BenchPhase
storeLookupPhase(const BenchOptions &opt)
{
    char tmpl[] = "/tmp/uvmasync-bench-store-XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    if (!dir)
        fatal("store_lookup: mkdtemp failed");
    constexpr std::uint64_t fp = 0x5eedf00ddeadbeefull;
    constexpr std::uint64_t records = 4096;
    auto keyOf = [](std::uint64_t i) {
        std::uint64_t x = i + 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    };
    {
        std::unique_ptr<ResultStore> store =
            ResultStore::open(dir, fp);
        ExperimentResult result;
        result.workload = "bench";
        result.mode = TransferMode::Async;
        result.size = SizeClass::Tiny;
        for (std::uint64_t i = 0; i < records; ++i) {
            result.clean.kernelPs = static_cast<double>(i) * 1e6;
            result.counters.faults = i;
            store->insert(keyOf(i), result);
        }
    }

    std::uint64_t hits = 0;
    BenchPhase phase = runBenchPhase(
        "store_lookup", "lookups/sec", opt.storeLookups, opt.reps,
        opt.warmup, [&] {
            std::unique_ptr<ResultStore> store =
                ResultStore::open(dir, fp);
            ExperimentResult out;
            std::uint64_t rng = 0x2545f4914f6cdd1dull;
            std::uint64_t acc = 0;
            for (std::uint64_t i = 0; i < opt.storeLookups; ++i) {
                // 3/4 of probes address stored records, 1/4 the key
                // space past them (guaranteed misses).
                std::uint64_t r = xorshift(rng);
                std::uint64_t idx =
                    (r & 3) ? r % records
                            : records + (r >> 32) % records;
                if (store->lookup(keyOf(idx), out))
                    acc += out.counters.faults;
            }
            g_sink = acc;
            hits = store->stats().hits;
        });
    phase.breakdown.emplace_back("hits", static_cast<double>(hits));
    phase.breakdown.emplace_back(
        "misses", static_cast<double>(opt.storeLookups - hits));

    // Scratch cleanup: 256 shard files + meta + the two dirs.
    std::string base = dir;
    for (std::size_t s = 0; s < ResultStore::shardCount; ++s) {
        char name[8];
        std::snprintf(name, sizeof(name), "s%02zx", s);
        ::unlink((base + "/shards/" + name).c_str());
    }
    ::unlink((base + "/meta.json").c_str());
    ::rmdir((base + "/shards").c_str());
    ::rmdir(base.c_str());
    return phase;
}

/**
 * The service hot path: submit + full result stream of a one-point
 * batch through the campaign daemon's AF_UNIX socket, with the
 * shared store attached. The store is pre-warmed during the warmup
 * reps, so the timed reps measure pure service overhead — wire
 * framing, the fsync'd batch journal, the scheduler handoff and the
 * stream read-back — i.e. the per-batch tax a cached campaign point
 * pays for living behind the daemon instead of in-process.
 */
BenchPhase
serveRoundtripPhase(const BenchOptions &opt)
{
    char tmpl[] = "/tmp/uvmasync-bench-serve-XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    if (!dir)
        fatal("serve_roundtrip: mkdtemp failed");
    std::string base = dir;

    // Inner scope: the daemon's store must be torn down before the
    // scratch cleanup below deletes its directory, or the store's
    // best-effort meta rewrite warns about the missing path.
    BenchPhase phase;
    {
        ServeOptions serveOpt;
        serveOpt.stateDir = base + "/state";
        serveOpt.storeDir = base + "/store";
        serveOpt.jobs = 1;
        ServeDaemon daemon(serveOpt);
        std::string socketPath = base + "/sock";
        ServeSocketServer server(daemon, socketPath);
        std::thread serverThread([&] { server.run(); });

        const std::string payload = "batch.workload = saxpy\n"
                                    "batch.size = tiny\n"
                                    "batch.runs = 1\n"
                                    "batch.mode = async\n";
        std::uint64_t streamedBytes = 0;
        phase = runBenchPhase(
            "serve_roundtrip", "batches/sec", opt.serveRoundtrips,
            opt.reps, opt.warmup, [&] {
                ServeClient client;
                std::string error;
                if (!client.connect(socketPath, error))
                    fatal("serve_roundtrip: %s", error.c_str());
                for (std::uint64_t i = 0; i < opt.serveRoundtrips;
                     ++i) {
                    std::string handle;
                    if (!client.submit(payload, handle, error))
                        fatal("serve_roundtrip: %s",
                              error.c_str());
                    std::string lines;
                    std::string state;
                    if (!client.stream(handle, 0, true, lines,
                                       state, error))
                        fatal("serve_roundtrip: %s",
                              error.c_str());
                    if (state != "done")
                        fatal("serve_roundtrip: batch state %s",
                              state.c_str());
                    streamedBytes += lines.size();
                }
            });
        ServeStats stats = daemon.stats();
        phase.breakdown.emplace_back(
            "store_hits", static_cast<double>(stats.storeHits));
        phase.breakdown.emplace_back(
            "streamed_bytes",
            static_cast<double>(streamedBytes));

        server.requestStop();
        serverThread.join();
        daemon.stop();
    }

    // Scratch cleanup: per-batch payload + journal files, the store
    // shards, and the scratch directories.
    if (DIR *d = ::opendir((base + "/state/batches").c_str())) {
        while (struct dirent *entry = ::readdir(d)) {
            std::string name = entry->d_name;
            if (name != "." && name != "..")
                ::unlink(
                    (base + "/state/batches/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir((base + "/state/batches").c_str());
    ::unlink((base + "/state/.preflight").c_str());
    ::rmdir((base + "/state").c_str());
    for (std::size_t s = 0; s < ResultStore::shardCount; ++s) {
        char name[8];
        std::snprintf(name, sizeof(name), "s%02zx", s);
        ::unlink((base + "/store/shards/" + name).c_str());
    }
    ::unlink((base + "/store/meta.json").c_str());
    ::rmdir((base + "/store/shards").c_str());
    ::rmdir((base + "/store").c_str());
    ::rmdir(base.c_str());
    return phase;
}

/**
 * The probe kernel: a serial data-dependency chain (latency-bound,
 * so code-placement noise between the two instantiations cannot
 * masquerade as overhead) plus, in the instrumented flavour, a span
 * and an instant emitted per step through NullTraceSink. Every sink
 * call is a constant expression folding to nothing, so the two
 * instantiations must time identically — test_trace.cc pins the
 * no-side-effect half at compile time, this phase pins the measured
 * half.
 */
template <bool WithSink>
[[gnu::noinline]] std::uint64_t
probeKernel(std::uint64_t iters)
{
    NullTraceSink sink;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    std::uint64_t acc = 0;
    Tick t = 0;
    for (std::uint64_t i = 0; i < iters; ++i) {
        std::uint64_t step = xorshift(x);
        acc += step ^ t;
        Tick end = t + (step & 0xff) + 1;
        if constexpr (WithSink) {
            if (sink.enabled(TraceCategory::Sim)) {
                sink.span(TraceCategory::Sim,
                          TraceName::EventDispatch, 0, t, end, step);
            }
            sink.instant(TraceCategory::Sim,
                         TraceName::EventDispatch, 0, end, acc);
        }
        t = end;
    }
    return acc;
}

void
nullSinkProbe(const BenchOptions &opt, BenchReport &report)
{
    // The probe compares two timings of (provably) the same code, so
    // its verdict is noise-bound, not cost-bound: give it at least
    // five reps regardless of the global --reps, and interleave the
    // two flavours so scheduler interference lands on both sample
    // sets instead of biasing whichever ran second.
    std::uint32_t reps = std::max<std::uint32_t>(opt.reps, 5);
    std::vector<double> plainNs, instrNs;
    for (std::uint32_t i = 0; i < opt.warmup + reps; ++i) {
        plainNs.push_back(timeOnceNs(
            [&] { g_sink = probeKernel<false>(opt.probeIters); }));
        instrNs.push_back(timeOnceNs(
            [&] { g_sink = probeKernel<true>(opt.probeIters); }));
    }
    BenchPhase plain =
        finishPhase("null_sink_probe_plain", "iters/sec",
                    opt.probeIters, opt.warmup, std::move(plainNs));
    BenchPhase instrumented = finishPhase(
        "null_sink_probe_instrumented", "iters/sec", opt.probeIters,
        opt.warmup, std::move(instrNs));
    report.phases.push_back(plain);
    report.phases.push_back(instrumented);
    // Best-sample comparison: the instantiations compile to the same
    // loop, so their best cases must coincide; medians would fold
    // scheduler noise into a fake "overhead".
    double plainBest =
        *std::min_element(plain.samplesNs.begin(),
                          plain.samplesNs.end());
    double instrBest =
        *std::min_element(instrumented.samplesNs.begin(),
                          instrumented.samplesNs.end());
    double overheadPct = (instrBest - plainBest) / plainBest * 100.0;
    if (overheadPct < 0.0)
        overheadPct = 0.0; // timing noise; the sink cannot be negative
    report.derived.emplace_back("null_sink_overhead_pct", overheadPct);
}

void
printReport(const BenchReport &report)
{
    std::printf("%-28s %14s %14s  %s\n", "phase", "median_ns", "rate",
                "unit");
    for (const BenchPhase &p : report.phases) {
        std::printf("%-28s %14.0f %14.0f  %s\n", p.name.c_str(),
                    p.medianNs, p.rate, p.unit.c_str());
    }
    for (const auto &[name, value] : report.derived)
        std::printf("%-28s %14.3f\n", name.c_str(), value);
    std::printf("peak RSS: %.1f MiB\n",
                static_cast<double>(report.peakRssBytes) /
                    (1024.0 * 1024.0));
}

int
benchMain(const BenchOptions &opt)
{
    BenchReport report;
    report.label = opt.label;
    report.machine = localFingerprint();

    report.phases.push_back(
        eventLoopPhase<EventQueue>("event_loop_calendar", opt));
    report.phases.push_back(
        eventLoopPhase<HeapEventQueue>("event_loop_heap", opt));
    double calRate = report.phases[0].rate;
    double heapRate = report.phases[1].rate;
    double speedup = heapRate > 0.0 ? calRate / heapRate : 0.0;
    report.derived.emplace_back("calendar_vs_heap_speedup", speedup);

    report.phases.push_back(migrationHotpathPhase(opt));
    if (!opt.skipRegistry)
        report.phases.push_back(registrySlicePhase(opt));
    report.phases.push_back(storeLookupPhase(opt));
    report.phases.push_back(serveRoundtripPhase(opt));
    nullSinkProbe(opt, report);

    report.peakRssBytes = peakRssBytes();

    printReport(report);

    if (!opt.outPath.empty()) {
        std::ofstream out(opt.outPath,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "uvmasync-bench: cannot write %s\n",
                         opt.outPath.c_str());
            return 1;
        }
        out << writeBenchReport(report) << "\n";
    }

    int rc = 0;
    if (opt.requireSpeedup > 0.0 && speedup < opt.requireSpeedup) {
        std::fprintf(stderr,
                     "uvmasync-bench: calendar_vs_heap_speedup "
                     "%.3f below the required %.3f\n",
                     speedup, opt.requireSpeedup);
        rc = 1;
    }
    double overhead = 0.0;
    report.findDerived("null_sink_overhead_pct", overhead);
    if (opt.maxNullOverheadPct > 0.0 &&
        overhead > opt.maxNullOverheadPct) {
        std::fprintf(stderr,
                     "uvmasync-bench: null-sink overhead %.3f%% "
                     "exceeds the %.3f%% gate\n",
                     overhead, opt.maxNullOverheadPct);
        rc = 1;
    }

    if (!opt.comparePath.empty()) {
        std::ifstream in(opt.comparePath, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "uvmasync-bench: cannot read %s\n",
                         opt.comparePath.c_str());
            return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        BenchReport baseline;
        std::string error;
        if (!parseBenchReport(buf.str(), baseline, error)) {
            std::fprintf(stderr,
                         "uvmasync-bench: bad baseline %s: %s\n",
                         opt.comparePath.c_str(), error.c_str());
            return 1;
        }
        BenchComparison cmp =
            compareBenchReports(baseline, report, opt.tolerance);
        std::printf("\ncomparison vs %s (tolerance %.0f%%):\n%s",
                    opt.comparePath.c_str(), opt.tolerance * 100.0,
                    formatComparison(cmp, opt.tolerance).c_str());
        if (!cmp.pass) {
            std::fprintf(stderr,
                         "uvmasync-bench: regression vs %s\n",
                         opt.comparePath.c_str());
            rc = 1;
        }
    }
    return rc;
}

} // namespace
} // namespace uvmasync

int
main(int argc, char **argv)
{
    using namespace uvmasync;
    BenchOptions opt;
    auto need = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", flag);
            usage(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--out") {
            opt.outPath = need(i, "--out");
        } else if (arg == "--label") {
            opt.label = need(i, "--label");
        } else if (arg == "--compare") {
            opt.comparePath = need(i, "--compare");
        } else if (arg == "--tolerance") {
            opt.tolerance = std::atof(need(i, "--tolerance"));
        } else if (arg == "--reps") {
            opt.reps =
                static_cast<std::uint32_t>(std::atoi(need(i, "--reps")));
        } else if (arg == "--warmup") {
            opt.warmup = static_cast<std::uint32_t>(
                std::atoi(need(i, "--warmup")));
        } else if (arg == "--events") {
            opt.events = std::strtoull(need(i, "--events"), nullptr, 10);
        } else if (arg == "--accesses") {
            opt.accesses =
                std::strtoull(need(i, "--accesses"), nullptr, 10);
        } else if (arg == "--require-speedup") {
            opt.requireSpeedup =
                std::atof(need(i, "--require-speedup"));
        } else if (arg == "--max-null-overhead") {
            opt.maxNullOverheadPct =
                std::atof(need(i, "--max-null-overhead"));
        } else if (arg == "--skip-registry") {
            opt.skipRegistry = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(2);
        }
    }
    if (opt.reps == 0) {
        std::fprintf(stderr, "--reps must be >= 1\n");
        usage(2);
    }
    return benchMain(opt);
}
