/**
 * @file
 * Static model linter CLI: check system configs, job files and the
 * built-in workload registry without simulating anything.
 *
 *   uvmasync-lint --all-workloads [--size CLASS|all]
 *       Lint every registry workload (CI gate; milliseconds).
 *
 *   uvmasync-lint --workload NAME [--size CLASS|all]
 *   uvmasync-lint --jobfile FILE
 *   uvmasync-lint --config FILE
 *       Lint one model.
 *
 *   uvmasync-lint --analyze ...
 *       Additionally run the static cost model on every linted job:
 *       per-mode predicted traffic/time table plus the advisor
 *       verdict (which transfer mode should win, before simulating).
 *
 *   uvmasync-lint --inject FILE
 *       Lint a fault-injection plan (inject.* keys): malformed
 *       parameters (UAL016), unknown/shadowed keys (UAL013/014) and
 *       plans that cannot perturb anything (UAL017).
 *
 *   uvmasync-lint --list-codes / --list-passes
 *       Document the UAL diagnostic codes / analysis passes.
 *
 * Common flags: --config FILE (system overlay for job lints),
 * --Werror (warnings fail the run), --pass NAME (restrict passes,
 * repeatable via comma list), --quiet (findings only, no summary),
 * --format text|sarif (finding output format; text is the default),
 * --jobs N (parallel workload analysis; output order and bytes are
 * identical at any N).
 *
 * Exit status: 0 clean (notes/warnings allowed unless --Werror),
 * 1 error-severity findings, 2 usage/IO error.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/cost_model.hh"
#include "analysis/lint.hh"
#include "analysis/sarif.hh"
#include "common/table.hh"
#include "runtime/config_loader.hh"
#include "workloads/job_loader.hh"
#include "workloads/registry.hh"

using namespace uvmasync;

namespace
{

struct Options
{
    bool allWorkloads = false;
    std::string workload;
    std::string jobfile;
    std::string configFile;
    std::string injectFile;
    bool configOnly = false;
    std::string size = "super";
    bool listCodes = false;
    bool listPasses = false;
    bool werror = false;
    bool quiet = false;
    bool analyze = false;
    bool sarif = false;
    unsigned jobs = 1;
    LintOptions lint;
};

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        auto setFormat = [&](const std::string &fmt) {
            if (fmt == "sarif")
                opt.sarif = true;
            else if (fmt == "text")
                opt.sarif = false;
            else {
                std::fprintf(stderr, "unknown format '%s'\n",
                             fmt.c_str());
                std::exit(2);
            }
        };
        if (arg == "--all-workloads")
            opt.allWorkloads = true;
        else if (arg == "--workload")
            opt.workload = value("--workload");
        else if (arg == "--jobfile")
            opt.jobfile = value("--jobfile");
        else if (arg == "--config")
            opt.configFile = value("--config");
        else if (arg == "--inject")
            opt.injectFile = value("--inject");
        else if (arg == "--size")
            opt.size = value("--size");
        else if (arg == "--list-codes")
            opt.listCodes = true;
        else if (arg == "--list-passes")
            opt.listPasses = true;
        else if (arg == "--Werror")
            opt.werror = true;
        else if (arg == "--quiet")
            opt.quiet = true;
        else if (arg == "--analyze")
            opt.analyze = true;
        else if (arg == "--format")
            setFormat(value("--format"));
        else if (arg.rfind("--format=", 0) == 0)
            setFormat(arg.substr(std::strlen("--format=")));
        else if (arg == "--jobs")
            opt.jobs = static_cast<unsigned>(
                std::max(1, std::atoi(value("--jobs").c_str())));
        else if (arg == "--pass") {
            std::istringstream iss(value("--pass"));
            std::string name;
            while (std::getline(iss, name, ','))
                opt.lint.passes.push_back(name);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return false;
        }
    }
    opt.lint.warningsAsErrors = opt.werror;
    opt.configOnly = !opt.configFile.empty() && !opt.allWorkloads &&
                     opt.workload.empty() && opt.jobfile.empty();
    return true;
}

int
listCodes()
{
    TextTable table({"code", "severity", "title"});
    table.setAlign(1, TextTable::Align::Left);
    table.setAlign(2, TextTable::Align::Left);
    for (const DiagSpec &spec : allDiagSpecs())
        table.addRow({spec.code, severityName(spec.severity),
                      spec.title});
    table.print(std::cout);
    return 0;
}

int
listPasses()
{
    TextTable table({"pass", "checks"});
    table.setAlign(1, TextTable::Align::Left);
    // Named to outlive the loop: the range expression's temporary
    // would be destroyed before the body runs (dangling passes()).
    PassManager pipeline = PassManager::standardPipeline();
    for (const auto &pass : pipeline.passes())
        table.addRow({pass->name(), pass->description()});
    table.print(std::cout);
    return 0;
}

/** One linted (and optionally cost-analyzed) model. */
struct UnitResult
{
    DiagnosticEngine diags;
    std::string analysis; //!< rendered cost table (--analyze)
};

UnitResult
lintUnit(const SystemConfig &system, const Job &job,
         const std::string &subject, const KvConfig *systemKv,
         const KvConfig *jobKv, const Options &opt)
{
    UnitResult r;
    r.diags = lintJob(system, job, subject, systemKv, jobKv, opt.lint);
    if (opt.analyze && !r.diags.hasErrors())
        r.analysis = renderCostReport(analyzeCost(system, job),
                                      subject);
    return r;
}

/**
 * Print one unit's findings (or stash them for the SARIF document)
 * and its cost table; returns the number of error findings.
 */
std::size_t
emit(const UnitResult &r, const Options &opt,
     DiagnosticEngine &sarifAcc)
{
    if (opt.sarif) {
        sarifAcc.merge(r.diags);
    } else {
        if (!r.diags.empty())
            std::cout << r.diags.formatAll();
        if (!opt.quiet && !r.diags.empty())
            std::cout << r.diags.summary() << "\n";
    }
    if (!r.analysis.empty())
        std::cout << r.analysis;
    return r.diags.count(Severity::Error);
}

std::size_t
emit(const DiagnosticEngine &diags, const Options &opt,
     DiagnosticEngine &sarifAcc)
{
    UnitResult r;
    r.diags = diags;
    return emit(r, opt, sarifAcc);
}

std::vector<SizeClass>
sizesFor(const Options &opt)
{
    if (opt.size == "all")
        return {allSizeClasses.begin(), allSizeClasses.end()};
    SizeClass s;
    if (!parseSizeClass(opt.size, s)) {
        std::fprintf(stderr, "unknown size class '%s'\n",
                     opt.size.c_str());
        std::exit(2);
    }
    return {s};
}

/**
 * Lint (and analyze) a batch of workload x size points. Points are
 * processed by --jobs worker threads but emitted strictly in task
 * order, so the output bytes do not depend on the thread count.
 */
std::size_t
lintWorkloadBatch(const std::vector<std::string> &names,
                  const SystemConfig &system,
                  const KvConfig *systemKv, const Options &opt,
                  DiagnosticEngine &sarifAcc)
{
    struct Task
    {
        std::string name;
        SizeClass size;
    };
    std::vector<Task> tasks;
    for (const std::string &name : names) {
        if (!WorkloadRegistry::instance().find(name)) {
            std::fprintf(stderr, "unknown workload '%s'\n",
                         name.c_str());
            std::exit(2);
        }
        for (SizeClass size : sizesFor(opt))
            tasks.push_back({name, size});
    }

    std::vector<UnitResult> results(tasks.size());
    unsigned workers = std::max(1u, opt.jobs);
    workers = static_cast<unsigned>(
        std::min<std::size_t>(workers, tasks.size() ? tasks.size()
                                                    : 1));
    std::atomic<std::size_t> next{0};
    auto work = [&]() {
        for (std::size_t i = next.fetch_add(1); i < tasks.size();
             i = next.fetch_add(1)) {
            const Workload *w =
                WorkloadRegistry::instance().find(tasks[i].name);
            Job job = w->makeJob(tasks[i].size);
            std::string subject =
                tasks[i].name + " @ " +
                std::string(sizeClassName(tasks[i].size));
            results[i] = lintUnit(system, job, subject, systemKv,
                                  nullptr, opt);
        }
    };
    if (workers <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(work);
        for (std::thread &t : pool)
            t.join();
    }

    std::size_t errors = 0;
    for (const UnitResult &r : results)
        errors += emit(r, opt, sarifAcc);
    return errors;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;
    if (opt.listCodes)
        return listCodes();
    if (opt.listPasses)
        return listPasses();
    if (!opt.allWorkloads && opt.workload.empty() &&
        opt.jobfile.empty() && opt.configFile.empty() &&
        opt.injectFile.empty()) {
        std::fprintf(
            stderr,
            "usage: uvmasync-lint --all-workloads | --workload NAME "
            "| --jobfile FILE | --config FILE | --inject FILE\n"
            "                     [--size CLASS|all] [--config FILE] "
            "[--pass NAME[,NAME]] [--Werror] [--quiet]\n"
            "                     [--analyze] [--format text|sarif] "
            "[--jobs N] [--list-codes] [--list-passes]\n");
        return 2;
    }

    registerAllWorkloads();

    KvConfig systemKv;
    SystemConfig system = SystemConfig::a100Epyc();
    const KvConfig *systemKvPtr = nullptr;
    if (!opt.configFile.empty()) {
        systemKv = KvConfig::fromFile(opt.configFile);
        // Overlay leniently: unknown keys surface as UAL013 from the
        // lint pipeline instead of applyConfig()'s fatal.
        DiagnosticEngine scratch;
        checkKvKeys(systemKv, knownSystemConfigKeys(),
                    "system config", scratch);
        if (!scratch.hasErrors())
            system = applyConfig(system, systemKv);
        systemKvPtr = &systemKv;
    }

    std::size_t errors = 0;
    DiagnosticEngine sarifAcc;

    if (opt.configOnly) {
        errors += emit(lintSystemConfig(system, systemKvPtr, opt.lint),
                       opt, sarifAcc);
    }

    if (!opt.injectFile.empty()) {
        KvConfig injectKv = KvConfig::fromFile(opt.injectFile);
        errors += emit(lintInjectPlan(injectKv, opt.lint), opt,
                       sarifAcc);
    }

    if (!opt.jobfile.empty()) {
        KvConfig jobKv = KvConfig::fromFile(opt.jobfile);
        DiagnosticEngine loadDiags;
        Job job = jobFromConfig(jobKv, &loadDiags);
        errors += emit(lintUnit(system, job, opt.jobfile, systemKvPtr,
                                &jobKv, opt),
                       opt, sarifAcc);
    }

    std::vector<std::string> names;
    if (!opt.workload.empty())
        names.push_back(opt.workload);
    if (opt.allWorkloads)
        for (const std::string &name :
             WorkloadRegistry::instance().names())
            names.push_back(name);
    if (!names.empty()) {
        errors += lintWorkloadBatch(names, system, systemKvPtr, opt,
                                    sarifAcc);
        if (opt.allWorkloads && !opt.quiet && !opt.sarif) {
            std::cout << "linted " << names.size()
                      << " workload(s) x " << sizesFor(opt).size()
                      << " size(s): "
                      << (errors == 0 ? "clean"
                                      : std::to_string(errors) +
                                            " error(s)")
                      << "\n";
        }
    }

    if (opt.sarif)
        std::cout << renderSarif(sarifAcc);

    return errors == 0 ? 0 : 1;
}
