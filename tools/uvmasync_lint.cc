/**
 * @file
 * Static model linter CLI: check system configs, job files and the
 * built-in workload registry without simulating anything.
 *
 *   uvmasync-lint --all-workloads [--size CLASS|all]
 *       Lint every registry workload (CI gate; milliseconds).
 *
 *   uvmasync-lint --workload NAME [--size CLASS|all]
 *   uvmasync-lint --jobfile FILE
 *   uvmasync-lint --config FILE
 *       Lint one model.
 *
 *   uvmasync-lint --inject FILE
 *       Lint a fault-injection plan (inject.* keys): malformed
 *       parameters (UAL016), unknown/shadowed keys (UAL013/014) and
 *       plans that cannot perturb anything (UAL017).
 *
 *   uvmasync-lint --list-codes / --list-passes
 *       Document the UAL diagnostic codes / analysis passes.
 *
 * Common flags: --config FILE (system overlay for job lints),
 * --Werror (warnings fail the run), --pass NAME (restrict passes,
 * repeatable via comma list), --quiet (findings only, no summary).
 *
 * Exit status: 0 clean (notes/warnings allowed unless --Werror),
 * 1 error-severity findings, 2 usage/IO error.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hh"
#include "common/table.hh"
#include "runtime/config_loader.hh"
#include "workloads/job_loader.hh"
#include "workloads/registry.hh"

using namespace uvmasync;

namespace
{

struct Options
{
    bool allWorkloads = false;
    std::string workload;
    std::string jobfile;
    std::string configFile;
    std::string injectFile;
    bool configOnly = false;
    std::string size = "super";
    bool listCodes = false;
    bool listPasses = false;
    bool werror = false;
    bool quiet = false;
    LintOptions lint;
};

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--all-workloads")
            opt.allWorkloads = true;
        else if (arg == "--workload")
            opt.workload = value("--workload");
        else if (arg == "--jobfile")
            opt.jobfile = value("--jobfile");
        else if (arg == "--config")
            opt.configFile = value("--config");
        else if (arg == "--inject")
            opt.injectFile = value("--inject");
        else if (arg == "--size")
            opt.size = value("--size");
        else if (arg == "--list-codes")
            opt.listCodes = true;
        else if (arg == "--list-passes")
            opt.listPasses = true;
        else if (arg == "--Werror")
            opt.werror = true;
        else if (arg == "--quiet")
            opt.quiet = true;
        else if (arg == "--pass") {
            std::istringstream iss(value("--pass"));
            std::string name;
            while (std::getline(iss, name, ','))
                opt.lint.passes.push_back(name);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return false;
        }
    }
    opt.lint.warningsAsErrors = opt.werror;
    opt.configOnly = !opt.configFile.empty() && !opt.allWorkloads &&
                     opt.workload.empty() && opt.jobfile.empty();
    return true;
}

int
listCodes()
{
    TextTable table({"code", "severity", "title"});
    table.setAlign(1, TextTable::Align::Left);
    table.setAlign(2, TextTable::Align::Left);
    for (const DiagSpec &spec : allDiagSpecs())
        table.addRow({spec.code, severityName(spec.severity),
                      spec.title});
    table.print(std::cout);
    return 0;
}

int
listPasses()
{
    TextTable table({"pass", "checks"});
    table.setAlign(1, TextTable::Align::Left);
    // Named to outlive the loop: the range expression's temporary
    // would be destroyed before the body runs (dangling passes()).
    PassManager pipeline = PassManager::standardPipeline();
    for (const auto &pass : pipeline.passes())
        table.addRow({pass->name(), pass->description()});
    table.print(std::cout);
    return 0;
}

/** Print findings; returns the number of error-severity ones. */
std::size_t
emit(const DiagnosticEngine &diags, const Options &opt)
{
    if (!diags.empty())
        std::cout << diags.formatAll();
    if (!opt.quiet && !diags.empty())
        std::cout << diags.summary() << "\n";
    return diags.count(Severity::Error);
}

std::vector<SizeClass>
sizesFor(const Options &opt)
{
    if (opt.size == "all")
        return {allSizeClasses.begin(), allSizeClasses.end()};
    SizeClass s;
    if (!parseSizeClass(opt.size, s)) {
        std::fprintf(stderr, "unknown size class '%s'\n",
                     opt.size.c_str());
        std::exit(2);
    }
    return {s};
}

std::size_t
lintOneWorkload(const std::string &name, const SystemConfig &system,
                const KvConfig *systemKv, const Options &opt)
{
    const Workload *w = WorkloadRegistry::instance().find(name);
    if (!w) {
        std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
        std::exit(2);
    }
    std::size_t errors = 0;
    for (SizeClass size : sizesFor(opt)) {
        Job job = w->makeJob(size);
        std::string subject =
            name + " @ " + std::string(sizeClassName(size));
        errors += emit(lintJob(system, job, subject, systemKv,
                               nullptr, opt.lint),
                       opt);
    }
    return errors;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;
    if (opt.listCodes)
        return listCodes();
    if (opt.listPasses)
        return listPasses();
    if (!opt.allWorkloads && opt.workload.empty() &&
        opt.jobfile.empty() && opt.configFile.empty() &&
        opt.injectFile.empty()) {
        std::fprintf(
            stderr,
            "usage: uvmasync-lint --all-workloads | --workload NAME "
            "| --jobfile FILE | --config FILE | --inject FILE\n"
            "                     [--size CLASS|all] [--config FILE] "
            "[--pass NAME[,NAME]] [--Werror] [--quiet]\n"
            "                     [--list-codes] [--list-passes]\n");
        return 2;
    }

    registerAllWorkloads();

    KvConfig systemKv;
    SystemConfig system = SystemConfig::a100Epyc();
    const KvConfig *systemKvPtr = nullptr;
    if (!opt.configFile.empty()) {
        systemKv = KvConfig::fromFile(opt.configFile);
        // Overlay leniently: unknown keys surface as UAL013 from the
        // lint pipeline instead of applyConfig()'s fatal.
        DiagnosticEngine scratch;
        checkKvKeys(systemKv, knownSystemConfigKeys(),
                    "system config", scratch);
        if (!scratch.hasErrors())
            system = applyConfig(system, systemKv);
        systemKvPtr = &systemKv;
    }

    std::size_t errors = 0;

    if (opt.configOnly) {
        errors += emit(
            lintSystemConfig(system, systemKvPtr, opt.lint), opt);
    }

    if (!opt.injectFile.empty()) {
        KvConfig injectKv = KvConfig::fromFile(opt.injectFile);
        errors += emit(lintInjectPlan(injectKv, opt.lint), opt);
    }

    if (!opt.jobfile.empty()) {
        KvConfig jobKv = KvConfig::fromFile(opt.jobfile);
        DiagnosticEngine loadDiags;
        Job job = jobFromConfig(jobKv, &loadDiags);
        errors += emit(lintJob(system, job, opt.jobfile, systemKvPtr,
                               &jobKv, opt.lint),
                       opt);
    }

    if (!opt.workload.empty())
        errors +=
            lintOneWorkload(opt.workload, system, systemKvPtr, opt);

    if (opt.allWorkloads) {
        std::size_t linted = 0;
        for (const std::string &name :
             WorkloadRegistry::instance().names()) {
            errors += lintOneWorkload(name, system, systemKvPtr, opt);
            ++linted;
        }
        if (!opt.quiet) {
            std::cout << "linted " << linted << " workload(s) x "
                      << sizesFor(opt).size() << " size(s): "
                      << (errors == 0 ? "clean"
                                      : std::to_string(errors) +
                                            " error(s)")
                      << "\n";
        }
    }

    return errors == 0 ? 0 : 1;
}
